"""Memory spaces and buffers for the simulated runtime.

A :class:`Buffer` wraps a NumPy array together with the :class:`MemorySpace`
it notionally lives in.  Kernels assert that their operands are resident on
the right device — exactly the discipline CUDA code needs — and the
:class:`Allocator` tracks live/peak bytes per space so tests and benchmarks
can check the memory behaviour of a pipeline (e.g. that the STF executor
frees intermediates eagerly).
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceError, SanitizerError
from ..obs.metrics import GLOBAL_METRICS, MetricsRegistry
from ..types import DeviceKind
from .device import Device


@dataclass(frozen=True)
class MemorySpace:
    """The address space of one device."""

    device: Device

    @property
    def name(self) -> str:
        return self.device.name


@dataclass
class Allocator:
    """Per-space accounting of live and peak allocation."""

    live: dict[str, int] = field(default_factory=dict)
    peak: dict[str, int] = field(default_factory=dict)

    def on_alloc(self, space: MemorySpace, nbytes: int) -> None:
        """Record an allocation in a space (updates live and peak)."""
        cur = self.live.get(space.name, 0) + nbytes
        self.live[space.name] = cur
        self.peak[space.name] = max(self.peak.get(space.name, 0), cur)

    def on_free(self, space: MemorySpace, nbytes: int) -> None:
        """Record a release in a space."""
        cur = self.live.get(space.name, 0) - nbytes
        if cur < 0:
            raise DeviceError(f"allocator underflow on {space.name}")
        self.live[space.name] = cur


#: Process-wide allocator used when none is supplied explicitly.
GLOBAL_ALLOCATOR = Allocator()


class Buffer:
    """A device-resident array.

    Parameters
    ----------
    array:
        the payload (any NumPy array; ``bytes`` payloads are wrapped as
        ``uint8`` arrays by :meth:`from_bytes`).
    space:
        where the data notionally lives.
    allocator:
        accounting sink (defaults to the module-global allocator).
    """

    __slots__ = ("array", "space", "_allocator", "_freed")

    def __init__(self, array: np.ndarray, space: MemorySpace,
                 allocator: Allocator | None = None) -> None:
        self.array = np.asarray(array)
        self.space = space
        self._allocator = allocator if allocator is not None else GLOBAL_ALLOCATOR
        self._freed = False
        self._allocator.on_alloc(space, self.nbytes)

    @classmethod
    def from_bytes(cls, payload: bytes, space: MemorySpace,
                   allocator: Allocator | None = None) -> "Buffer":
        return cls(np.frombuffer(payload, dtype=np.uint8), space, allocator)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def device(self) -> Device:
        return self.space.device

    def require_on(self, device: Device) -> np.ndarray:
        """Assert residency and return the raw array (kernel entry check)."""
        if self._freed:
            raise DeviceError("use of a freed buffer")
        if self.space.device.name != device.name:
            raise DeviceError(
                f"buffer resides on {self.space.name}, kernel launched on "
                f"{device.name}; insert a transfer first")
        return self.array

    def free(self) -> None:
        """Release the accounting for this buffer (idempotent)."""
        if not self._freed:
            self._allocator.on_free(self.space, self.nbytes)
            self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Buffer({self.array.dtype}[{self.array.size}] "
                f"on {self.space.name})")


# ---------------------------------------------------------------------- #
# runtime contract sanitizer                                              #
# ---------------------------------------------------------------------- #

class Sanitizer:
    """Runtime mirror of the fzlint dataflow contracts (FZL014-FZL016).

    Enabled with ``FZMOD_SANITIZE=1`` (or :func:`set_sanitizing` in
    tests), it enforces at execution time what the static pass proves
    at lint time:

    * **use-after-release** — every array released back to a
      :class:`BufferPool` is poisoned with a canary byte (``0xA5``) and
      remembered while the pool keeps it alive; hot-path kernels call
      :meth:`check_live` at entry and a released operand raises
      :class:`~repro.errors.SanitizerError` at the call site instead of
      silently reading recycled memory;
    * **double-release** — releasing the same lease twice raises before
      the free list is corrupted;
    * **out= aliasing** — kernels call :meth:`check_no_alias`; an
      ``out=`` destination that overlaps an input per
      ``np.shares_memory`` raises, except the documented in-place form
      where input and ``out`` are the *same object*.

    Violations are also counted in the observability registry
    (``sanitizer.use_after_release`` / ``sanitizer.double_release`` /
    ``sanitizer.aliasing``), so a service can alert on them even where
    the exception is swallowed by a job boundary.  When disabled, every
    check is a single attribute load and boolean test — the hot path
    stays unaffected.
    """

    #: byte written over every released buffer; reads of recycled memory
    #: that dodge the id check still surface as loud deterministic garbage
    CANARY = 0xA5

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._override: bool | None = None
        self._lock = threading.Lock()
        # id(arr) -> weakref for arrays released *and* still held by a
        # pool.  Weak references (not plain ids): when a whole pool is
        # dropped its idle arrays die without passing through acquire/
        # clear, and CPython reuses their ids for fresh allocations — a
        # plain id set would then report phantom double releases.  The
        # weakref callback purges the entry the moment the array dies.
        self._released: dict[int, weakref.ref] = {}
        registry = metrics if metrics is not None else GLOBAL_METRICS
        self._uar = registry.counter("sanitizer.use_after_release")
        self._double = registry.counter("sanitizer.double_release")
        self._alias = registry.counter("sanitizer.aliasing")
        self._poisoned = registry.counter("sanitizer.poisoned")

    @property
    def enabled(self) -> bool:
        """True when contract checks are active (env or override)."""
        if self._override is not None:
            return self._override
        return os.environ.get("FZMOD_SANITIZE", "0") == "1"

    def set_enabled(self, enabled: bool | None) -> None:
        """Force on/off (``None`` returns control to the env var)."""
        self._override = enabled

    def _is_released(self, arr: np.ndarray) -> bool:
        with self._lock:
            ref = self._released.get(id(arr))
            if ref is None:
                return False
            target = ref()
            if target is None:
                # array died and a new object reused its id before the
                # weakref callback ran
                del self._released[id(arr)]
                return False
            return target is arr

    # -- pool integration ---------------------------------------------- #
    def check_release(self, arr: np.ndarray) -> None:
        """Raise if ``arr`` is already sitting released in a pool."""
        if not self.enabled:
            return
        if self._is_released(arr):
            self._double.inc()
            raise SanitizerError(
                f"double release of a pooled {arr.dtype} array of shape "
                f"{arr.shape}: the lease was already returned to the "
                f"pool (static counterpart: FZL014)")

    def on_release(self, arr: np.ndarray, *, pooled: bool) -> None:
        """Poison a released array; track it while the pool holds it."""
        if not self.enabled:
            return
        key = id(arr)
        if pooled:
            def _purge(ref, *, _key=key):
                with self._lock:
                    if self._released.get(_key) is ref:
                        del self._released[_key]
            with self._lock:
                self._released[key] = weakref.ref(arr, _purge)
        else:
            # dropped (freed): stop tracking so a future allocation can
            # reuse the id without tripping a phantom violation
            with self._lock:
                self._released.pop(key, None)
        self._poison(arr)

    def on_acquire(self, arr: np.ndarray) -> None:
        """A pooled array went back into service: stop tracking it."""
        if not self.enabled:
            return
        with self._lock:
            self._released.pop(id(arr), None)

    def forget(self, arrays) -> None:
        """Untrack arrays leaving a pool for good (``clear``)."""
        with self._lock:
            for arr in arrays:
                self._released.pop(id(arr), None)

    def _poison(self, arr: np.ndarray) -> None:
        try:
            arr.view(np.uint8)[...] = self.CANARY
        except (ValueError, TypeError):
            return  # non-contiguous / exotic dtype: skip, id check remains
        self._poisoned.inc()

    # -- kernel entry checks ------------------------------------------- #
    def check_live(self, context: str, *arrays) -> None:
        """Raise if any operand (or a view base) was released."""
        if not self.enabled:
            return
        for arr in arrays:
            a = arr
            while isinstance(a, np.ndarray):
                if self._is_released(a):
                    self._uar.inc()
                    raise SanitizerError(
                        f"{context}: operand {a.dtype}{a.shape} is used "
                        f"after its pool lease was released (static "
                        f"counterpart: FZL015)")
                a = a.base

    def check_no_alias(self, context: str, dest, allow_identical: bool = True,
                       **inputs) -> None:
        """Raise when ``dest`` overlaps an input it is not identical to.

        Identical objects (``arr is dest``) are the documented visible
        in-place idiom (``lorenzo_forward(grid, out=grid)``) and pass
        unless ``allow_identical=False`` (kernels like ``delta_forward``
        whose write order makes even full in-place illegal); any other
        overlap per ``np.shares_memory`` is the hidden aliasing FZL016
        flags statically.
        """
        if not self.enabled or dest is None:
            return
        if not isinstance(dest, np.ndarray):
            return
        for name, arr in inputs.items():
            if arr is None or not isinstance(arr, np.ndarray):
                continue
            if arr is dest and allow_identical:
                continue
            if np.shares_memory(dest, arr):
                self._alias.inc()
                raise SanitizerError(
                    f"{context}: out= destination aliases input "
                    f"`{name}` ({arr.dtype}{arr.shape}); the kernel "
                    f"would read values it already overwrote (static "
                    f"counterpart: FZL016)")


#: Process-wide sanitizer; pools and hot-path kernels all consult it.
SANITIZER = Sanitizer()


def sanitizing_enabled() -> bool:
    """True when the runtime contract sanitizer is active."""
    return SANITIZER.enabled


def set_sanitizing(enabled: bool | None) -> None:
    """Process-wide switch (tests / harnesses); ``None`` re-reads env."""
    SANITIZER.set_enabled(enabled)


# ---------------------------------------------------------------------- #
# buffer pool                                                             #
# ---------------------------------------------------------------------- #

#: the host CPU space scratch kernels allocate from by default
HOST_SPACE = MemorySpace(Device(name="host", kind=DeviceKind.CPU,
                                mem_bandwidth=200e9, link_bandwidth=200e9,
                                launch_overhead=0.0))


class BufferPool:
    """Recycles NumPy scratch arrays by ``(space, dtype, shape)``.

    Kernels on the hot path (prequantize, Lorenzo diffs/scans, delta
    coding) need same-shaped integer/float scratch on every call; a fresh
    ``np.empty`` per call pays allocation plus first-touch page faults.
    The pool hands previously released arrays back instead.

    Accounting contract (checked by the runtime tests):

    * a pool *miss* allocates and records ``on_alloc`` against the pool's
      :class:`Allocator` — live and peak rise once;
    * a *hit* and its matching :meth:`release` move an existing array in
      and out of the free list — live and peak are untouched, so reuse can
      never inflate the measured peak;
    * :meth:`release` beyond the per-key depth or the byte budget frees
      the array (``on_free``) instead of pooling it;
    * :meth:`clear` frees every idle array, returning live accounting to
      what is still checked out (zero once callers released everything).

    Arrays handed out by :meth:`acquire` contain garbage (``np.empty``
    semantics) and must only be released back by the caller that acquired
    them.  The pool is thread-safe; the in-process shard executor shares
    one pool across its worker threads.
    """

    def __init__(self, space: MemorySpace = HOST_SPACE,
                 allocator: Allocator | None = None, *,
                 max_per_key: int = 4, max_bytes: int = 256 << 20,
                 metrics: MetricsRegistry | None = None) -> None:
        self.space = space
        self.allocator = allocator if allocator is not None else GLOBAL_ALLOCATOR
        self.max_per_key = int(max_per_key)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._free: dict[tuple[str, tuple[int, ...]], list[np.ndarray]] = {}
        self._free_bytes = 0
        # counters are registry-backed; ad-hoc pools (tests, experiments)
        # get a private registry so their counts start at zero, while the
        # process pool publishes into GLOBAL_METRICS (see GLOBAL_POOL)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("bufferpool.hits")
        self._misses = self.metrics.counter("bufferpool.misses")
        self._drops = self.metrics.counter("bufferpool.drops")

    def acquire(self, shape: tuple[int, ...] | int, dtype) -> np.ndarray:
        """An uninitialised array of the requested shape class."""
        dtype = np.dtype(dtype)
        shape = (int(shape),) if np.isscalar(shape) else tuple(
            int(n) for n in shape)
        key = (dtype.str, shape)
        with self._lock:
            bucket = self._free.get(key)
            if bucket:
                arr = bucket.pop()
                self._free_bytes -= arr.nbytes
                self._hits.inc()
                SANITIZER.on_acquire(arr)
                return arr
            self._misses.inc()
        arr = np.empty(shape, dtype=dtype)
        self.allocator.on_alloc(self.space, arr.nbytes)
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Return an acquired array to the pool (or free it when full)."""
        SANITIZER.check_release(arr)
        key = (arr.dtype.str, arr.shape)
        with self._lock:
            bucket = self._free.setdefault(key, [])
            if (len(bucket) < self.max_per_key
                    and self._free_bytes + arr.nbytes <= self.max_bytes):
                # poison/track before the array becomes acquirable again,
                # so a concurrent acquire cannot observe a stale record
                SANITIZER.on_release(arr, pooled=True)
                bucket.append(arr)
                self._free_bytes += arr.nbytes
                return
            self._drops.inc()
        self.allocator.on_free(self.space, arr.nbytes)
        SANITIZER.on_release(arr, pooled=False)

    def clear(self) -> None:
        """Free every pooled (idle) array."""
        with self._lock:
            freed = self._free_bytes
            idle = [a for b in self._free.values() for a in b]
            self._free.clear()
            self._free_bytes = 0
        SANITIZER.forget(idle)
        if freed:
            self.allocator.on_free(self.space, freed)

    # counters are registry-backed; these views keep the historical API
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def drops(self) -> int:
        return self._drops.value

    @property
    def reuse_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters + occupancy, as stable scalars."""
        with self._lock:
            return {
                "pooled_arrays": sum(len(b) for b in self._free.values()),
                "pooled_bytes": self._free_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "drops": self.drops,
                "reuse_rate": round(self.reuse_rate, 4),
            }


#: Process-wide scratch pool used by the hot-path kernels.  Its counters
#: publish straight into the global metrics registry.
GLOBAL_POOL = BufferPool(metrics=GLOBAL_METRICS)


def _collect_runtime_gauges(registry: MetricsRegistry) -> None:
    """Publish pool occupancy and allocator watermarks on scrape."""
    with GLOBAL_POOL._lock:
        pooled = sum(len(b) for b in GLOBAL_POOL._free.values())
        pooled_bytes = GLOBAL_POOL._free_bytes
    registry.gauge("bufferpool.pooled_arrays").set(pooled)
    registry.gauge("bufferpool.pooled_bytes").set(pooled_bytes)
    for space, nbytes in sorted(GLOBAL_ALLOCATOR.live.items()):
        registry.gauge("allocator.live_bytes", space=space).set(nbytes)
    for space, nbytes in sorted(GLOBAL_ALLOCATOR.peak.items()):
        registry.gauge("allocator.peak_bytes", space=space).set(nbytes)


GLOBAL_METRICS.add_collector(_collect_runtime_gauges)

_POOL_DISABLED = False


def pooling_enabled() -> bool:
    """True when hot-path kernels should draw scratch from the pool
    (disable with ``FZMOD_BUFFER_POOL=0`` or :func:`set_pooling`)."""
    return (not _POOL_DISABLED
            and os.environ.get("FZMOD_BUFFER_POOL", "1") != "0")


def set_pooling(enabled: bool) -> None:
    """Process-wide switch used by the perf harness's cold-path runs."""
    global _POOL_DISABLED
    _POOL_DISABLED = not enabled


def default_pool() -> BufferPool | None:
    """The pool kernels should use, or ``None`` when pooling is off."""
    return GLOBAL_POOL if pooling_enabled() else None

