"""Memory spaces and buffers for the simulated runtime.

A :class:`Buffer` wraps a NumPy array together with the :class:`MemorySpace`
it notionally lives in.  Kernels assert that their operands are resident on
the right device — exactly the discipline CUDA code needs — and the
:class:`Allocator` tracks live/peak bytes per space so tests and benchmarks
can check the memory behaviour of a pipeline (e.g. that the STF executor
frees intermediates eagerly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceError
from .device import Device


@dataclass(frozen=True)
class MemorySpace:
    """The address space of one device."""

    device: Device

    @property
    def name(self) -> str:
        return self.device.name


@dataclass
class Allocator:
    """Per-space accounting of live and peak allocation."""

    live: dict[str, int] = field(default_factory=dict)
    peak: dict[str, int] = field(default_factory=dict)

    def on_alloc(self, space: MemorySpace, nbytes: int) -> None:
        """Record an allocation in a space (updates live and peak)."""
        cur = self.live.get(space.name, 0) + nbytes
        self.live[space.name] = cur
        self.peak[space.name] = max(self.peak.get(space.name, 0), cur)

    def on_free(self, space: MemorySpace, nbytes: int) -> None:
        """Record a release in a space."""
        cur = self.live.get(space.name, 0) - nbytes
        if cur < 0:
            raise DeviceError(f"allocator underflow on {space.name}")
        self.live[space.name] = cur


#: Process-wide allocator used when none is supplied explicitly.
GLOBAL_ALLOCATOR = Allocator()


class Buffer:
    """A device-resident array.

    Parameters
    ----------
    array:
        the payload (any NumPy array; ``bytes`` payloads are wrapped as
        ``uint8`` arrays by :meth:`from_bytes`).
    space:
        where the data notionally lives.
    allocator:
        accounting sink (defaults to the module-global allocator).
    """

    __slots__ = ("array", "space", "_allocator", "_freed")

    def __init__(self, array: np.ndarray, space: MemorySpace,
                 allocator: Allocator | None = None) -> None:
        self.array = np.asarray(array)
        self.space = space
        self._allocator = allocator if allocator is not None else GLOBAL_ALLOCATOR
        self._freed = False
        self._allocator.on_alloc(space, self.nbytes)

    @classmethod
    def from_bytes(cls, payload: bytes, space: MemorySpace,
                   allocator: Allocator | None = None) -> "Buffer":
        return cls(np.frombuffer(payload, dtype=np.uint8), space, allocator)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def device(self) -> Device:
        return self.space.device

    def require_on(self, device: Device) -> np.ndarray:
        """Assert residency and return the raw array (kernel entry check)."""
        if self._freed:
            raise DeviceError("use of a freed buffer")
        if self.space.device.name != device.name:
            raise DeviceError(
                f"buffer resides on {self.space.name}, kernel launched on "
                f"{device.name}; insert a transfer first")
        return self.array

    def free(self) -> None:
        """Release the accounting for this buffer (idempotent)."""
        if not self._freed:
            self._allocator.on_free(self.space, self.nbytes)
            self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Buffer({self.array.dtype}[{self.array.size}] "
                f"on {self.space.name})")
