"""Memory spaces and buffers for the simulated runtime.

A :class:`Buffer` wraps a NumPy array together with the :class:`MemorySpace`
it notionally lives in.  Kernels assert that their operands are resident on
the right device — exactly the discipline CUDA code needs — and the
:class:`Allocator` tracks live/peak bytes per space so tests and benchmarks
can check the memory behaviour of a pipeline (e.g. that the STF executor
frees intermediates eagerly).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceError
from ..obs.metrics import GLOBAL_METRICS, MetricsRegistry
from ..types import DeviceKind
from .device import Device


@dataclass(frozen=True)
class MemorySpace:
    """The address space of one device."""

    device: Device

    @property
    def name(self) -> str:
        return self.device.name


@dataclass
class Allocator:
    """Per-space accounting of live and peak allocation."""

    live: dict[str, int] = field(default_factory=dict)
    peak: dict[str, int] = field(default_factory=dict)

    def on_alloc(self, space: MemorySpace, nbytes: int) -> None:
        """Record an allocation in a space (updates live and peak)."""
        cur = self.live.get(space.name, 0) + nbytes
        self.live[space.name] = cur
        self.peak[space.name] = max(self.peak.get(space.name, 0), cur)

    def on_free(self, space: MemorySpace, nbytes: int) -> None:
        """Record a release in a space."""
        cur = self.live.get(space.name, 0) - nbytes
        if cur < 0:
            raise DeviceError(f"allocator underflow on {space.name}")
        self.live[space.name] = cur


#: Process-wide allocator used when none is supplied explicitly.
GLOBAL_ALLOCATOR = Allocator()


class Buffer:
    """A device-resident array.

    Parameters
    ----------
    array:
        the payload (any NumPy array; ``bytes`` payloads are wrapped as
        ``uint8`` arrays by :meth:`from_bytes`).
    space:
        where the data notionally lives.
    allocator:
        accounting sink (defaults to the module-global allocator).
    """

    __slots__ = ("array", "space", "_allocator", "_freed")

    def __init__(self, array: np.ndarray, space: MemorySpace,
                 allocator: Allocator | None = None) -> None:
        self.array = np.asarray(array)
        self.space = space
        self._allocator = allocator if allocator is not None else GLOBAL_ALLOCATOR
        self._freed = False
        self._allocator.on_alloc(space, self.nbytes)

    @classmethod
    def from_bytes(cls, payload: bytes, space: MemorySpace,
                   allocator: Allocator | None = None) -> "Buffer":
        return cls(np.frombuffer(payload, dtype=np.uint8), space, allocator)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def device(self) -> Device:
        return self.space.device

    def require_on(self, device: Device) -> np.ndarray:
        """Assert residency and return the raw array (kernel entry check)."""
        if self._freed:
            raise DeviceError("use of a freed buffer")
        if self.space.device.name != device.name:
            raise DeviceError(
                f"buffer resides on {self.space.name}, kernel launched on "
                f"{device.name}; insert a transfer first")
        return self.array

    def free(self) -> None:
        """Release the accounting for this buffer (idempotent)."""
        if not self._freed:
            self._allocator.on_free(self.space, self.nbytes)
            self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Buffer({self.array.dtype}[{self.array.size}] "
                f"on {self.space.name})")


# ---------------------------------------------------------------------- #
# buffer pool                                                             #
# ---------------------------------------------------------------------- #

#: the host CPU space scratch kernels allocate from by default
HOST_SPACE = MemorySpace(Device(name="host", kind=DeviceKind.CPU,
                                mem_bandwidth=200e9, link_bandwidth=200e9,
                                launch_overhead=0.0))


class BufferPool:
    """Recycles NumPy scratch arrays by ``(space, dtype, shape)``.

    Kernels on the hot path (prequantize, Lorenzo diffs/scans, delta
    coding) need same-shaped integer/float scratch on every call; a fresh
    ``np.empty`` per call pays allocation plus first-touch page faults.
    The pool hands previously released arrays back instead.

    Accounting contract (checked by the runtime tests):

    * a pool *miss* allocates and records ``on_alloc`` against the pool's
      :class:`Allocator` — live and peak rise once;
    * a *hit* and its matching :meth:`release` move an existing array in
      and out of the free list — live and peak are untouched, so reuse can
      never inflate the measured peak;
    * :meth:`release` beyond the per-key depth or the byte budget frees
      the array (``on_free``) instead of pooling it;
    * :meth:`clear` frees every idle array, returning live accounting to
      what is still checked out (zero once callers released everything).

    Arrays handed out by :meth:`acquire` contain garbage (``np.empty``
    semantics) and must only be released back by the caller that acquired
    them.  The pool is thread-safe; the in-process shard executor shares
    one pool across its worker threads.
    """

    def __init__(self, space: MemorySpace = HOST_SPACE,
                 allocator: Allocator | None = None, *,
                 max_per_key: int = 4, max_bytes: int = 256 << 20,
                 metrics: MetricsRegistry | None = None) -> None:
        self.space = space
        self.allocator = allocator if allocator is not None else GLOBAL_ALLOCATOR
        self.max_per_key = int(max_per_key)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._free: dict[tuple[str, tuple[int, ...]], list[np.ndarray]] = {}
        self._free_bytes = 0
        # counters are registry-backed; ad-hoc pools (tests, experiments)
        # get a private registry so their counts start at zero, while the
        # process pool publishes into GLOBAL_METRICS (see GLOBAL_POOL)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("bufferpool.hits")
        self._misses = self.metrics.counter("bufferpool.misses")
        self._drops = self.metrics.counter("bufferpool.drops")

    def acquire(self, shape: tuple[int, ...] | int, dtype) -> np.ndarray:
        """An uninitialised array of the requested shape class."""
        dtype = np.dtype(dtype)
        shape = (int(shape),) if np.isscalar(shape) else tuple(
            int(n) for n in shape)
        key = (dtype.str, shape)
        with self._lock:
            bucket = self._free.get(key)
            if bucket:
                arr = bucket.pop()
                self._free_bytes -= arr.nbytes
                self._hits.inc()
                return arr
            self._misses.inc()
        arr = np.empty(shape, dtype=dtype)
        self.allocator.on_alloc(self.space, arr.nbytes)
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Return an acquired array to the pool (or free it when full)."""
        key = (arr.dtype.str, arr.shape)
        with self._lock:
            bucket = self._free.setdefault(key, [])
            if (len(bucket) < self.max_per_key
                    and self._free_bytes + arr.nbytes <= self.max_bytes):
                bucket.append(arr)
                self._free_bytes += arr.nbytes
                return
            self._drops.inc()
        self.allocator.on_free(self.space, arr.nbytes)

    def clear(self) -> None:
        """Free every pooled (idle) array."""
        with self._lock:
            freed = self._free_bytes
            self._free.clear()
            self._free_bytes = 0
        if freed:
            self.allocator.on_free(self.space, freed)

    # counters are registry-backed; these views keep the historical API
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def drops(self) -> int:
        return self._drops.value

    @property
    def reuse_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters + occupancy, as stable scalars."""
        with self._lock:
            return {
                "pooled_arrays": sum(len(b) for b in self._free.values()),
                "pooled_bytes": self._free_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "drops": self.drops,
                "reuse_rate": round(self.reuse_rate, 4),
            }


#: Process-wide scratch pool used by the hot-path kernels.  Its counters
#: publish straight into the global metrics registry.
GLOBAL_POOL = BufferPool(metrics=GLOBAL_METRICS)


def _collect_runtime_gauges(registry: MetricsRegistry) -> None:
    """Publish pool occupancy and allocator watermarks on scrape."""
    with GLOBAL_POOL._lock:
        pooled = sum(len(b) for b in GLOBAL_POOL._free.values())
        pooled_bytes = GLOBAL_POOL._free_bytes
    registry.gauge("bufferpool.pooled_arrays").set(pooled)
    registry.gauge("bufferpool.pooled_bytes").set(pooled_bytes)
    for space, nbytes in sorted(GLOBAL_ALLOCATOR.live.items()):
        registry.gauge("allocator.live_bytes", space=space).set(nbytes)
    for space, nbytes in sorted(GLOBAL_ALLOCATOR.peak.items()):
        registry.gauge("allocator.peak_bytes", space=space).set(nbytes)


GLOBAL_METRICS.add_collector(_collect_runtime_gauges)

_POOL_DISABLED = False


def pooling_enabled() -> bool:
    """True when hot-path kernels should draw scratch from the pool
    (disable with ``FZMOD_BUFFER_POOL=0`` or :func:`set_pooling`)."""
    return (not _POOL_DISABLED
            and os.environ.get("FZMOD_BUFFER_POOL", "1") != "0")


def set_pooling(enabled: bool) -> None:
    """Process-wide switch used by the perf harness's cold-path runs."""
    global _POOL_DISABLED
    _POOL_DISABLED = not enabled


def default_pool() -> BufferPool | None:
    """The pool kernels should use, or ``None`` when pooling is off."""
    return GLOBAL_POOL if pooling_enabled() else None

