"""Intra-process slab parallelism: the shared :class:`SlabPool`.

The compiled hot path is one fused NumPy pass per field; every large
ufunc in it releases the GIL, so slab-level *threads* can saturate the
cores while still emitting the identical single-stream FZMD container —
unlike the process-pool sharded engine, which pays per-shard container
framing and IPC for its parallelism.  This module provides the three
pieces the compiled plans need:

* :func:`resolve_threads` — one place that turns ``threads=`` / the
  ``FZMOD_THREADS`` environment variable / "auto" into a worker count;
* :class:`SlabPool` and :func:`shared_pool` — a lazily-created,
  persistent process-wide thread pool (warm calls pay zero pool
  spin-up) with ordered fan-out/fan-in and an inline guard so slab
  tasks that themselves reach the pool never deadlock;
* :func:`thread_arena` — a per-thread :class:`~repro.runtime.memory.
  BufferPool` with a private allocator and metrics registry, so slab
  workers acquire scratch without contending on the global pool's lock
  (or racing the unlocked global :class:`Allocator` counters).

Determinism contract (enforced by fzlint FZL020 and the byte-identity
tests): work scheduled onto the pool must not mutate module-level or
plan-shared state, and results must be merged in slab order —
:meth:`SlabPool.run_ordered` returns results *by submission index*, and
raises the lowest-indexed failure, so ``threads=N`` output is
byte-identical to ``threads=1`` for every ``N``.

The thread *budget* travels via a context variable
(:func:`thread_budget` / :func:`active_threads`) so kernels called
through module interfaces with no ``threads`` parameter (the Huffman
chunk codec) can discover how wide the enclosing plan is running.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence, TypeVar

from ..obs.metrics import MetricsRegistry
from .memory import HOST_SPACE, Allocator, BufferPool, MemorySpace

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["AUTO_MIN_BYTES", "MAX_THREADS", "SlabPool", "active_threads",
           "resolve_threads", "run_slabs", "shared_pool", "slab_ranges",
           "thread_arena", "thread_budget"]

#: below this input size "auto" stays single-threaded: slab fan-out
#: costs a few hundred microseconds of submission + join, which only
#: pays for itself once each slab holds several MB of ufunc work
AUTO_MIN_BYTES = 8 << 20

#: hard ceiling on the pool width (runaway FZMOD_THREADS guard)
MAX_THREADS = 64

_ACTIVE: contextvars.ContextVar[int] = contextvars.ContextVar(
    "fzmod_active_threads", default=0)


def active_threads() -> int:
    """The thread budget installed by the innermost :func:`thread_budget`.

    ``0`` means no compiled plan has declared a budget on this call path
    (kernels then treat it as "run serial").
    """
    return _ACTIVE.get()


@contextlib.contextmanager
def thread_budget(n: int) -> Iterator[int]:
    """Declare the slab-thread budget for the enclosed call tree."""
    n = max(1, int(n))
    token = _ACTIVE.set(n)
    try:
        yield n
    finally:
        _ACTIVE.reset(token)


def resolve_threads(threads: int | None = None, *,
                    nbytes: int | None = None) -> int:
    """Turn a ``threads=`` argument into a concrete worker count.

    Resolution order: an explicit ``threads`` wins; else a set
    ``FZMOD_THREADS`` environment variable; else "auto" — the CPU count
    when the input is big enough to amortise slab fan-out
    (``nbytes >= AUTO_MIN_BYTES``), one otherwise (``nbytes=None``
    means "size unknown, assume large").  Always ``>= 1`` and capped at
    :data:`MAX_THREADS`.
    """
    if threads is not None:
        n = int(threads)
        if n < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        return min(n, MAX_THREADS)
    env = os.environ.get("FZMOD_THREADS", "").strip()
    if env:
        try:
            n = int(env)
        except ValueError:
            raise ValueError(
                f"FZMOD_THREADS must be an integer, got {env!r}") from None
        return min(max(1, n), MAX_THREADS)
    cores = os.cpu_count() or 1
    if nbytes is not None and nbytes < AUTO_MIN_BYTES:
        return 1
    return min(cores, MAX_THREADS)


def slab_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Partition ``range(n)`` into ``<= parts`` contiguous, balanced slabs.

    Deterministic for a given ``(n, parts)``: sizes differ by at most
    one, larger slabs first.  Fewer than ``parts`` ranges come back when
    ``n < parts``; empty list when ``n == 0``.
    """
    n = int(n)
    if n <= 0:
        return []
    parts = max(1, min(int(parts), n))
    base, extra = divmod(n, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for k in range(parts):
        stop = start + base + (1 if k < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class SlabPool:
    """A persistent thread pool with ordered, deadlock-safe fan-out.

    Thin wrapper over :class:`~concurrent.futures.ThreadPoolExecutor`
    adding the two properties slab execution needs: results come back
    in *submission* order (never completion order — the determinism
    contract), and tasks submitted from inside a pool worker run inline
    on the calling thread, so a kernel that fans out while already
    running on the pool can never deadlock waiting for its own worker
    slot.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._member = threading.local()

        def _mark_member() -> None:
            self._member.flag = True

        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="fzmod-slab",
            initializer=_mark_member)

    def in_worker(self) -> bool:
        """Whether the calling thread is one of this pool's workers."""
        return bool(getattr(self._member, "flag", False))

    def run_ordered(self, fn: Callable[[T], R],
                    items: Sequence[T]) -> list[R]:
        """``[fn(item) for item in items]``, fanned out over the pool.

        Results are returned in item order; when several tasks raise,
        the *lowest-indexed* failure propagates (deterministic, matching
        what a serial loop would have raised first).  Runs inline for a
        single item or when called from a pool worker.
        """
        if len(items) <= 1 or self.in_worker():
            return [fn(item) for item in items]
        futures = [self._executor.submit(fn, item) for item in items]
        results: list[R] = []
        first_exc: BaseException | None = None
        for fut in futures:
            try:
                results.append(fut.result())
            # fzlint: disable-next-line=FZL005 -- every failure is collected
            # and the lowest-indexed one re-raised below; nothing is dropped
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return results

    def shutdown(self, wait: bool = False) -> None:
        """Retire the pool's threads (in-flight tasks still complete)."""
        self._executor.shutdown(wait=wait)


_POOL: SlabPool | None = None
_POOL_LOCK = threading.Lock()


def shared_pool(workers: int | None = None) -> SlabPool:
    """The process-wide persistent :class:`SlabPool`, grown on demand.

    Created lazily on first use and reused for every later call — warm
    requests pay zero pool spin-up.  Asking for more workers than the
    current pool has replaces it with a wider one (the old pool's
    threads drain and exit); asking for fewer reuses the wider pool,
    with the fan-out width bounded by the caller's slab count instead.
    """
    global _POOL
    want = resolve_threads(workers) if workers is not None else \
        resolve_threads()
    with _POOL_LOCK:
        pool = _POOL
        if pool is None or pool.workers < want:
            old = pool
            pool = SlabPool(want)
            # fzlint: disable-next-line=FZL017 -- the whole point of the
            # shared pool is process-wide reuse; the rebind happens under
            # _POOL_LOCK and never from a slab worker (run_ordered inlines)
            _POOL = pool
            if old is not None:
                old.shutdown(wait=False)
        return pool


def run_slabs(fn: Callable[[T], R], items: Sequence[T], *,
              threads: int | None = None) -> list[R]:
    """Fan ``fn`` over ``items`` on the shared pool, results in order."""
    if len(items) <= 1:
        return [fn(item) for item in items]
    return shared_pool(threads).run_ordered(fn, items)


# --------------------------------------------------------------------- #
# per-thread scratch arenas                                              #
# --------------------------------------------------------------------- #

#: each slab worker's arena is bounded well below the global pool's
#: budget — scratch is a handful of slab-sized arrays per thread
ARENA_MAX_BYTES = 128 << 20

_ARENA = threading.local()


def thread_arena(space: MemorySpace = HOST_SPACE) -> BufferPool:
    """This thread's private scratch :class:`BufferPool`.

    Slab workers acquire their ping-pong grids here instead of from the
    global pool: no cross-thread lock contention on the hot path, and —
    load-bearing — a *private* :class:`Allocator` and
    :class:`MetricsRegistry`, because the global allocator's counters
    are plain unlocked dict updates that data-race under concurrent
    slab traffic.  Arenas persist for the life of the pool thread, so
    warm slab runs reuse their scratch across calls.
    """
    pool = getattr(_ARENA, "pool", None)
    if pool is None or pool.space is not space:
        pool = BufferPool(space, Allocator(), metrics=MetricsRegistry(),
                          max_bytes=ARENA_MAX_BYTES)
        # fzlint: disable-next-line=FZL017 -- _ARENA is threading.local, so
        # this store is private to the calling thread by construction
        _ARENA.pool = pool
    return pool
