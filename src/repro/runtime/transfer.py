"""Host<->device transfers with modelled cost.

``copy_to`` produces a new :class:`~repro.runtime.memory.Buffer` in the
target space and books the transfer on the link timeline of a
:class:`~repro.runtime.clock.SimClock`.  Device-to-device copies are staged
through the slower of the two links, matching PCIe peer behaviour on the
paper's V100 platform.

A :class:`TransferStats` sink accumulates H2D/D2H traffic so tests can
assert, e.g., that the FZMod-Default pipeline ships only quant codes (not
the full field) to the CPU for Huffman encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TransferError
from .clock import SimClock
from .memory import Allocator, Buffer, MemorySpace


@dataclass
class TransferStats:
    """Accumulated transfer traffic in bytes, keyed by (src, dst)."""

    traffic: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, src: str, dst: str, nbytes: int) -> None:
        """Accumulate ``nbytes`` of traffic on the (src, dst) edge."""
        key = (src, dst)
        self.traffic[key] = self.traffic.get(key, 0) + nbytes

    def total(self) -> int:
        """Total bytes moved across all edges."""
        return sum(self.traffic.values())

    def between(self, src: str, dst: str) -> int:
        """Bytes moved from ``src`` to ``dst``."""
        return self.traffic.get((src, dst), 0)


def link_name(src: str, dst: str) -> str:
    """Timeline resource name for the src->dst link (direction matters:
    PCIe is full duplex, so H2D and D2H get independent timelines)."""
    return f"link:{src}->{dst}"


def transfer_seconds(nbytes: int, src: MemorySpace, dst: MemorySpace) -> float:
    """Modelled duration of moving ``nbytes`` from ``src`` to ``dst``."""
    bw = min(src.device.link_bandwidth, dst.device.link_bandwidth)
    return nbytes / bw


def copy_to(buf: Buffer, dst: MemorySpace, *, clock: SimClock | None = None,
            stats: TransferStats | None = None, not_before: float = 0.0,
            allocator: Allocator | None = None) -> tuple[Buffer, float]:
    """Copy ``buf`` into ``dst`` space.

    Returns ``(new_buffer, ready_time)`` where ``ready_time`` is the
    simulated completion time on the link timeline (0.0 when no clock is
    supplied).  A same-space copy is free and returns the original buffer.
    """
    src = buf.space
    if src.name == dst.name:
        return buf, not_before
    ready = not_before
    if clock is not None:
        iv = clock.reserve(link_name(src.name, dst.name),
                           transfer_seconds(buf.nbytes, src, dst),
                           not_before=not_before,
                           label=f"copy {buf.nbytes}B")
        ready = iv.end
    if stats is not None:
        stats.record(src.name, dst.name, buf.nbytes)
    # A transfer materialises a distinct copy: mutating one instance must
    # never silently change another space's instance.
    new = Buffer(buf.array.copy(), dst, allocator=allocator)
    return new, ready
