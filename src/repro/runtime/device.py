"""Simulated execution devices.

A :class:`Device` describes one execution resource of the heterogeneous
node: its kind (CPU or GPU), memory bandwidth, host link bandwidth and
kernel-launch overhead.  These numbers drive the analytic performance model
(:mod:`repro.perf`) and the simulated timelines of the STF scheduler; the
actual computation always happens in NumPy on the host.

The default registry models one CPU and one GPU; platform presets matching
the paper's Table 1 live in :mod:`repro.perf.platform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceError
from ..types import DeviceKind


@dataclass(frozen=True)
class Device:
    """One simulated execution resource.

    Attributes
    ----------
    name:
        unique identifier (``"cpu0"``, ``"gpu0"`` ...).
    kind:
        :class:`~repro.types.DeviceKind`.
    mem_bandwidth:
        device-local memory bandwidth in bytes/second.
    link_bandwidth:
        host<->device transfer bandwidth in bytes/second (for the CPU this
        is its own memory bandwidth: a host-to-host "transfer" is a copy).
    launch_overhead:
        fixed per-kernel launch latency in seconds.
    """

    name: str
    kind: DeviceKind
    mem_bandwidth: float
    link_bandwidth: float
    launch_overhead: float

    def __post_init__(self) -> None:
        if self.mem_bandwidth <= 0 or self.link_bandwidth <= 0:
            raise DeviceError(f"device {self.name}: bandwidths must be positive")
        if self.launch_overhead < 0:
            raise DeviceError(f"device {self.name}: negative launch overhead")

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU


@dataclass
class DeviceRegistry:
    """Mutable collection of the node's devices."""

    _devices: dict[str, Device] = field(default_factory=dict)

    def add(self, device: Device) -> Device:
        """Register a device (names must be unique)."""
        if device.name in self._devices:
            raise DeviceError(f"device {device.name!r} already registered")
        self._devices[device.name] = device
        return device

    def get(self, name: str) -> Device:
        """Look a device up by name (raises for unknown names)."""
        try:
            return self._devices[name]
        except KeyError:
            raise DeviceError(f"unknown device {name!r}; have "
                              f"{sorted(self._devices)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def names(self) -> list[str]:
        """Registered device names, sorted."""
        return sorted(self._devices)

    def gpus(self) -> list[Device]:
        """All registered GPU devices."""
        return [d for d in self._devices.values() if d.is_gpu]

    def cpus(self) -> list[Device]:
        """All registered CPU devices."""
        return [d for d in self._devices.values() if not d.is_gpu]


def default_node(gpu_mem_bw: float = 3.35e12, gpu_link_bw: float = 35.7e9,
                 cpu_mem_bw: float = 200e9, gpu_launch: float = 5e-6,
                 cpu_launch: float = 1e-6) -> DeviceRegistry:
    """A single-CPU, single-GPU node (H100-class defaults from Table 1)."""
    reg = DeviceRegistry()
    reg.add(Device(name="cpu0", kind=DeviceKind.CPU, mem_bandwidth=cpu_mem_bw,
                   link_bandwidth=cpu_mem_bw, launch_overhead=cpu_launch))
    reg.add(Device(name="gpu0", kind=DeviceKind.GPU, mem_bandwidth=gpu_mem_bw,
                   link_bandwidth=gpu_link_bw, launch_overhead=gpu_launch))
    return reg
