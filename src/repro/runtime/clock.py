"""Simulated timelines for the heterogeneous runtime.

The reproduction executes kernels as NumPy calls on the host, but models
*where* the original system would have run them (which device, which
stream) and *how long* they would take there.  A :class:`SimClock` keeps one
monotonically-advancing timeline per resource (device or link) and computes
makespans, so the scheduler can report the concurrency a real heterogeneous
system would extract (cf. the CUDASTF overlap demo of §3.3.1).

All simulated durations are in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Interval:
    """A scheduled occupancy on one resource's timeline."""

    resource: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimClock:
    """Per-resource simulated timelines.

    ``reserve(resource, duration, not_before)`` books the earliest interval
    of ``duration`` on ``resource`` starting no earlier than ``not_before``
    (resources execute their queue in order, like CUDA streams).
    """

    _avail: dict[str, float] = field(default_factory=dict)
    intervals: list[Interval] = field(default_factory=list)

    def available(self, resource: str) -> float:
        """Earliest free time on a resource's timeline."""
        return self._avail.get(resource, 0.0)

    def reserve(self, resource: str, duration: float, not_before: float = 0.0,
                label: str = "") -> Interval:
        """Book the earliest interval of ``duration`` on ``resource``
        starting no earlier than ``not_before``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.available(resource), not_before)
        iv = Interval(resource=resource, label=label, start=start,
                      end=start + duration)
        self._avail[resource] = iv.end
        self.intervals.append(iv)
        return iv

    @property
    def makespan(self) -> float:
        return max((iv.end for iv in self.intervals), default=0.0)

    def busy_time(self, resource: str) -> float:
        """Total booked occupancy on one resource."""
        return sum(iv.duration for iv in self.intervals if iv.resource == resource)

    def serial_time(self) -> float:
        """Total work if everything ran back-to-back on one resource."""
        return sum(iv.duration for iv in self.intervals)

    def utilization(self, resource: str) -> float:
        """Busy time over makespan for one resource."""
        span = self.makespan
        return self.busy_time(resource) / span if span > 0 else 0.0

    def reset(self) -> None:
        """Clear all timelines and recorded intervals."""
        self._avail.clear()
        self.intervals.clear()
