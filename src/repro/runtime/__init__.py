"""Simulated heterogeneous runtime (devices, memory, streams, transfers).

This package stands in for the CUDA runtime of the original system: kernels
execute as NumPy calls, but residency is enforced (a kernel cannot read a
buffer that "lives" on another device without an explicit or STF-inserted
transfer) and every operation books simulated time on per-resource
timelines, so schedules, overlap and transfer traffic are all observable.
"""

from .clock import Interval, SimClock
from .device import Device, DeviceRegistry, default_node
from .memory import (SANITIZER, Allocator, Buffer, BufferPool, MemorySpace,
                     Sanitizer, default_pool, pooling_enabled,
                     sanitizing_enabled, set_pooling, set_sanitizing)
from .stream import Event, OrderedWorkQueue, Stream
from .threads import (SlabPool, active_threads, resolve_threads, run_slabs,
                      shared_pool, slab_ranges, thread_arena, thread_budget)
from .transfer import TransferStats, copy_to, transfer_seconds

__all__ = [
    "Interval", "SimClock", "Device", "DeviceRegistry", "default_node",
    "Allocator", "Buffer", "BufferPool", "MemorySpace", "default_pool",
    "pooling_enabled", "set_pooling", "Sanitizer", "SANITIZER",
    "sanitizing_enabled", "set_sanitizing", "Event", "OrderedWorkQueue",
    "Stream", "TransferStats", "copy_to", "transfer_seconds",
    "SlabPool", "active_threads", "resolve_threads", "run_slabs",
    "shared_pool", "slab_ranges", "thread_arena", "thread_budget",
]
