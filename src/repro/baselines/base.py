"""Common interface for the baseline compressors (§4.1 "Baselines").

Every baseline implements the same two-method contract as the FZModules
pipelines (compress -> self-describing blob + stats, decompress from blob),
on top of the same kernel substrate, so benches treat pipelines and
baselines uniformly.
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..core.header import ContainerHeader, assemble, parse, split_sections
from ..core.pipeline import CompressedField, CompressionStats
from ..errors import HeaderError
from ..types import EbMode, ErrorBound, check_field


class Compressor(abc.ABC):
    """A complete error-bounded compressor."""

    #: canonical name (matches :data:`repro.perf.estimator.COMPRESSORS`)
    name: str

    def resolve_eb(self, data: np.ndarray, eb: ErrorBound | float,
                   mode: EbMode | str = EbMode.REL) -> tuple[ErrorBound, float]:
        """Normalise the bound argument and resolve it to absolute."""
        if not isinstance(eb, ErrorBound):
            eb = ErrorBound(float(eb), EbMode(mode))
        if eb.mode is EbMode.REL:
            eb_abs = eb.absolute(float(data.min()), float(data.max()))
        else:
            eb_abs = eb.value
        return eb, float(eb_abs)

    @abc.abstractmethod
    def _encode(self, data: np.ndarray, eb_abs: float
                ) -> tuple[dict[str, bytes], dict]:
        """Produce (sections, meta) for ``data``; meta must round-trip JSON."""

    @abc.abstractmethod
    def _decode(self, sections: dict[str, bytes], meta: dict,
                header: ContainerHeader) -> np.ndarray:
        """Exactly invert :meth:`_encode` (within the stored bound)."""

    # ------------------------------------------------------------------ #
    def compress(self, data: np.ndarray, eb: ErrorBound | float,
                 mode: EbMode | str = EbMode.REL) -> CompressedField:
        """Compress ``data`` into a self-describing container."""
        data = check_field(data)
        eb, eb_abs = self.resolve_eb(data, eb, mode)
        t0 = time.perf_counter()
        sections, meta = self._encode(data, eb_abs)
        elapsed = time.perf_counter() - t0
        header = ContainerHeader(
            shape=data.shape, dtype=data.dtype.str, eb_value=eb.value,
            eb_mode=eb.mode.value, eb_abs=eb_abs, radius=0,
            modules={"baseline": self.name},
            stage_meta={"baseline": meta})
        header_bytes, body = assemble(header, sections)
        blob = header_bytes + body
        stats = CompressionStats(
            input_bytes=data.nbytes, output_bytes=len(blob),
            element_count=data.size, eb_abs=eb_abs,
            code_fraction=float(meta.get("code_fraction", 0.5)),
            outlier_fraction=0.0, outlier_count=0,
            section_sizes={k: len(v) for k, v in sections.items()},
            stage_seconds={self.name: elapsed})
        return CompressedField(blob=blob, stats=stats, header=header)

    def decompress(self, blob: bytes | CompressedField) -> np.ndarray:
        """Reconstruct the field from a container produced by this compressor."""
        if isinstance(blob, CompressedField):
            blob = blob.blob
        header, body = parse(blob)
        if header.modules.get("baseline") != self.name:
            raise HeaderError(
                f"blob was produced by {header.modules!r}, not by {self.name!r}")
        sections = split_sections(header, body)
        return self._decode(sections, header.stage_meta.get("baseline", {}),
                            header)
