"""cuSZp2 baseline: fused 1-D offset prediction + fixed-length encoding.

cuSZp2 [Huang et al., SC'24] optimises for end-to-end throughput with a
single fused kernel: pre-quantise, predict each value from its predecessor
in the flattened stream, zigzag the residual, and pack each 32-value block
at the block's maximal bit width.  No entropy coding, no outliers — every
residual width is representable — which is why it is the throughput leader
but rarely the ratio leader in Table 3.
"""

from __future__ import annotations

import numpy as np

from ..core.header import ContainerHeader
from ..errors import CodecError
from ..kernels import bitshuffle as bs
from ..kernels import fixedlen as fl
from ..kernels import lorenzo, quantize
from .base import Compressor


class CuSZp2(Compressor):
    """Fused-kernel GPU compressor (throughput-optimised)."""

    name = "cuszp2"

    def __init__(self, block: int = fl.BLOCK_VALUES) -> None:
        self.block = block

    def _encode(self, data: np.ndarray, eb_abs: float
                ) -> tuple[dict[str, bytes], dict]:
        grid = quantize.prequantize(data, eb_abs)
        deltas = lorenzo.offset1d_forward(grid)
        zz = bs.zigzag(deltas)
        if zz.size and int(zz.max()) >= 2**32:
            raise CodecError("error bound too tight for 32-bit fixed-length "
                             "encoding")
        enc = fl.encode(zz.astype(np.uint32), block=self.block)
        return ({"widths": enc.widths, "payload": enc.payload},
                {"count": enc.count, "block": enc.block,
                 "code_fraction": enc.nbytes() / data.nbytes})

    def _decode(self, sections: dict[str, bytes], meta: dict,
                header: ContainerHeader) -> np.ndarray:
        enc = fl.FixedLenEncoded(widths=sections["widths"],
                                 payload=sections["payload"],
                                 count=int(meta["count"]),
                                 block=int(meta["block"]))
        zz = fl.decode(enc).astype(np.uint64)
        deltas = bs.unzigzag(zz)
        grid = lorenzo.offset1d_inverse(deltas)
        out = quantize.dequantize(grid, header.eb_abs, header.np_dtype)
        return out.reshape(header.shape)
