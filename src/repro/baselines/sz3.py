"""SZ3 baseline: high-quality CPU modular compressor.

SZ3 [Liang et al., TBD'23] composes a dynamic multilevel spline
interpolation predictor with error-controlled quantisation, Huffman coding
and a general lossless backend.  It is the rate-distortion and CR leader of
Table 3 across the board — at CPU throughput.

This implementation reuses the same interpolation kernel as FZMod-Quality
but with the quality advantages real SZ3 has over the GPU port:

* **predictor auto-selection** — real SZ3 samples the data and picks among
  its predictors (interpolation, Lorenzo, regression); here both an
  interpolation variant and a delta variant are encoded and the smaller
  container wins (recorded in the header, so decode is unambiguous);
* a much larger quant-code alphabet (radius 32768 instead of 512), so
  almost nothing becomes an outlier even at tight bounds;
* a longer Huffman length limit (20 bits) fitting that alphabet optimally;
* a final generic lossless pass (zstd in the paper; the token-dedup +
  Huffman codec here) over every payload, which squeezes the anchor values
  and residual structure the primary codec leaves behind.
"""

from __future__ import annotations

import numpy as np

from ..core.header import ContainerHeader
from ..errors import CodecError
from ..kernels import bitshuffle as bs
from ..kernels import delta, dictionary, huffman, interp, lz, quantize
from .base import Compressor

_RADIUS = 1 << 15
_MAX_LEN = 20


class SZ3(Compressor):
    """High-ratio CPU compressor (auto-selected predictor + Huffman +
    lossless backend)."""

    name = "sz3"

    def __init__(self, max_level: int | None = None) -> None:
        self.max_level = max_level

    # -- interp variant ------------------------------------------------- #
    def _encode_interp(self, data: np.ndarray, eb_abs: float,
                       radius: int = _RADIUS) -> tuple[dict[str, bytes], dict]:
        res = interp.compress(data, eb_abs, radius=radius,
                              max_level=self.max_level, dynamic=True)
        if res.codes.size == 0:
            enc = huffman.encode_empty(2 * radius, max_len=_MAX_LEN)
        else:
            counts = np.bincount(res.codes, minlength=2 * radius)
            book = huffman.build_codebook(counts, max_len=_MAX_LEN)
            enc = huffman.encode(res.codes, book)
        idx, val, count = quantize.pack_outliers(res.outliers)
        sections = {
            "payload": lz.compress(enc.payload),
            "lengths": lz.compress(enc.lengths.tobytes()),
            "chunk_syms": enc.chunk_symbols.tobytes(),
            "chunk_bits": enc.chunk_bits.tobytes(),
            "anchors": lz.compress(res.anchors.tobytes()),
            "outlier.idx": idx,
            "outlier.val": val,
        }
        meta = {"variant": "interp", "radius": radius, "count": enc.count,
                "max_len": enc.max_len,
                "nchunks": int(enc.chunk_symbols.size),
                "max_level": res.max_level, "outlier_count": count,
                "choices": list(res.choices),
                "code_fraction": res.codes.nbytes / data.nbytes}
        return sections, meta

    def _decode_interp(self, sections: dict[str, bytes], meta: dict,
                       header: ContainerHeader) -> np.ndarray:
        nchunks = int(meta["nchunks"])
        enc = huffman.HuffmanEncoded(
            payload=lz.decompress(sections["payload"]),
            chunk_symbols=np.frombuffer(sections["chunk_syms"],
                                        dtype=np.int64, count=nchunks),
            chunk_bits=np.frombuffer(sections["chunk_bits"],
                                     dtype=np.int64, count=nchunks),
            count=int(meta["count"]),
            lengths=np.frombuffer(lz.decompress(sections["lengths"]),
                                  dtype=np.uint8),
            max_len=int(meta["max_len"]))
        codes = huffman.decode(enc).astype(np.uint16)
        outliers = quantize.unpack_outliers(
            sections.get("outlier.idx", b""), sections.get("outlier.val", b""),
            int(meta["outlier_count"]))
        anchors = np.frombuffer(lz.decompress(sections["anchors"]),
                                dtype=header.np_dtype)
        res = interp.InterpResult(
            codes=codes, outliers=outliers, anchors=anchors,
            radius=int(meta.get("radius", _RADIUS)),
            eb_abs=header.eb_abs, max_level=int(meta["max_level"]),
            shape=header.shape, dtype=header.np_dtype,
            choices=tuple(int(c) for c in meta.get("choices", ())))
        out = interp.decompress(res)
        if out.shape != header.shape:
            raise CodecError("sz3 shape mismatch after decode")
        return out

    # -- lorenzo variant -------------------------------------------------- #
    def _encode_lorenzo(self, data: np.ndarray, eb_abs: float
                        ) -> tuple[dict[str, bytes], dict]:
        from ..kernels import lorenzo
        res = lorenzo.compress(data, eb_abs, radius=_RADIUS)
        codes = res.codes.reshape(-1)
        counts = np.bincount(codes, minlength=2 * _RADIUS)
        book = huffman.build_codebook(counts, max_len=_MAX_LEN)
        enc = huffman.encode(codes, book)
        idx, val, count = quantize.pack_outliers(res.outliers)
        sections = {
            "payload": lz.compress(enc.payload),
            "lengths": lz.compress(enc.lengths.tobytes()),
            "chunk_syms": enc.chunk_symbols.tobytes(),
            "chunk_bits": enc.chunk_bits.tobytes(),
            "outlier.idx": idx,
            "outlier.val": val,
        }
        meta = {"variant": "lorenzo", "count": enc.count,
                "max_len": enc.max_len,
                "nchunks": int(enc.chunk_symbols.size),
                "outlier_count": count,
                "code_fraction": codes.nbytes / data.nbytes}
        return sections, meta

    def _decode_lorenzo(self, sections: dict[str, bytes], meta: dict,
                        header: ContainerHeader) -> np.ndarray:
        from ..kernels import lorenzo
        nchunks = int(meta["nchunks"])
        enc = huffman.HuffmanEncoded(
            payload=lz.decompress(sections["payload"]),
            chunk_symbols=np.frombuffer(sections["chunk_syms"],
                                        dtype=np.int64, count=nchunks),
            chunk_bits=np.frombuffer(sections["chunk_bits"],
                                     dtype=np.int64, count=nchunks),
            count=int(meta["count"]),
            lengths=np.frombuffer(lz.decompress(sections["lengths"]),
                                  dtype=np.uint8),
            max_len=int(meta["max_len"]))
        codes = huffman.decode(enc).astype(np.uint16)
        outliers = quantize.unpack_outliers(
            sections.get("outlier.idx", b""), sections.get("outlier.val", b""),
            int(meta["outlier_count"]))
        return lorenzo.decompress_parts(
            codes=codes.reshape(header.shape), outliers=outliers,
            radius=_RADIUS, eb_abs=header.eb_abs, shape=header.shape,
            dtype=header.np_dtype)

    # -- delta variant ---------------------------------------------------- #
    def _encode_delta(self, data: np.ndarray, eb_abs: float
                      ) -> tuple[dict[str, bytes], dict]:
        grid = quantize.prequantize(data, eb_abs)
        zz = bs.zigzag(delta.delta_forward(grid))
        if zz.size and int(zz.max()) >= 2**32:
            raise CodecError("error bound too tight for 32-bit bitshuffle")
        shuffled = bs.shuffle(zz.astype(np.uint32), width_bits=32)
        z = dictionary.eliminate(shuffled, word_bytes=4)
        sections = {
            "bitmap2": z.bitmap2,
            "bitmap1": lz.compress(z.bitmap1),
            "words": lz.compress(z.words),
        }
        meta = {"variant": "delta", "count": int(zz.size),
                "orig_len": z.orig_len, "word_bytes": z.word_bytes,
                "code_fraction": z.nbytes() / data.nbytes}
        return sections, meta

    def _decode_delta(self, sections: dict[str, bytes], meta: dict,
                      header: ContainerHeader) -> np.ndarray:
        z = dictionary.ZeroEliminated(
            bitmap2=sections["bitmap2"],
            bitmap1=lz.decompress(sections["bitmap1"]),
            words=lz.decompress(sections["words"]),
            orig_len=int(meta["orig_len"]),
            word_bytes=int(meta["word_bytes"]))
        shuffled = dictionary.restore(z)
        zz = bs.unshuffle(shuffled, int(meta["count"]), width_bits=32)
        grid = delta.delta_inverse(bs.unzigzag(zz.astype(np.uint64)))
        out = quantize.dequantize(grid, header.eb_abs, header.np_dtype)
        return out.reshape(header.shape)

    # -- auto-selection ---------------------------------------------------- #
    def _encode(self, data: np.ndarray, eb_abs: float
                ) -> tuple[dict[str, bytes], dict]:
        # real SZ3 samples the input and picks a predictor configuration;
        # here every variant is encoded and the smallest container wins
        candidates = [self._encode_interp(data, eb_abs),
                      self._encode_interp(data, eb_abs, radius=512),
                      self._encode_lorenzo(data, eb_abs),
                      self._encode_delta(data, eb_abs)]
        return min(candidates,
                   key=lambda sm: sum(len(v) for v in sm[0].values()))

    def _decode(self, sections: dict[str, bytes], meta: dict,
                header: ContainerHeader) -> np.ndarray:
        variant = meta.get("variant", "interp")
        if variant == "interp":
            return self._decode_interp(sections, meta, header)
        if variant == "lorenzo":
            return self._decode_lorenzo(sections, meta, header)
        if variant == "delta":
            return self._decode_delta(sections, meta, header)
        raise CodecError(f"unknown sz3 variant {variant!r}")
