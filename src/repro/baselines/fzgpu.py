"""FZ-GPU baseline: fused Lorenzo + bitshuffle + dictionary encoding.

FZ-GPU [Zhang et al., HPDC'23] keeps cuSZ's multidimensional Lorenzo
predictor but replaces Huffman with a fused zigzag + bit-plane shuffle +
zero-block dictionary stage.  Working on full-width (32-bit) zigzagged
residuals avoids the outlier side channel entirely, and the fused kernel
eliminates zeros at fine (8-byte) word granularity — both of which give it
a better ratio than the staged FZMod-Speed pipeline built from the same
techniques (the module default is a coarser 32-byte compaction word), as
Table 3 shows.
"""

from __future__ import annotations

import numpy as np

from ..core.header import ContainerHeader
from ..errors import CodecError
from ..kernels import bitshuffle as bs
from ..kernels import dictionary, lorenzo, quantize
from .base import Compressor


class FZGPU(Compressor):
    """Fused bitshuffle/dictionary GPU compressor."""

    name = "fzgpu"

    def __init__(self, word_bytes: int = 8, shuffle_block: int = 1024) -> None:
        self.word_bytes = word_bytes
        self.shuffle_block = shuffle_block

    def _encode(self, data: np.ndarray, eb_abs: float
                ) -> tuple[dict[str, bytes], dict]:
        grid = quantize.prequantize(data, eb_abs)
        deltas = lorenzo.lorenzo_forward(grid)
        zz = bs.zigzag(deltas)
        if zz.size and int(zz.max()) >= 2**32:
            raise CodecError("error bound too tight for 32-bit bitshuffle")
        shuffled = bs.shuffle(zz.astype(np.uint32), width_bits=32,
                              block=self.shuffle_block)
        z = dictionary.eliminate(shuffled, word_bytes=self.word_bytes)
        return ({"bitmap2": z.bitmap2, "bitmap1": z.bitmap1, "words": z.words},
                {"count": int(zz.size), "orig_len": z.orig_len,
                 "word_bytes": z.word_bytes, "block": self.shuffle_block,
                 "code_fraction": z.nbytes() / data.nbytes})

    def _decode(self, sections: dict[str, bytes], meta: dict,
                header: ContainerHeader) -> np.ndarray:
        z = dictionary.ZeroEliminated(
            bitmap2=sections["bitmap2"], bitmap1=sections["bitmap1"],
            words=sections["words"], orig_len=int(meta["orig_len"]),
            word_bytes=int(meta["word_bytes"]))
        shuffled = dictionary.restore(z)
        zz = bs.unshuffle(shuffled, int(meta["count"]), width_bits=32,
                          block=int(meta["block"]))
        deltas = bs.unzigzag(zz.astype(np.uint64)).reshape(header.shape)
        grid = lorenzo.lorenzo_inverse(deltas)
        return quantize.dequantize(grid, header.eb_abs, header.np_dtype)
