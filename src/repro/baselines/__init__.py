"""State-of-the-art baseline compressors, rebuilt on the kernel substrate.

``get_compressor(name)`` also resolves the three FZModules presets through
a uniform :class:`~repro.baselines.base.Compressor`-compatible adapter, so
evaluation code can iterate over all seven systems of the paper's §4.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import CompressedField, Pipeline, decompress as _pipeline_decompress
from ..core.presets import get_preset
from ..errors import ConfigError
from ..types import EbMode, ErrorBound
from .base import Compressor
from .cuszp2 import CuSZp2
from .fzgpu import FZGPU
from .pfpl import PFPL
from .sz3 import SZ3

BASELINE_NAMES = ("cuszp2", "fzgpu", "pfpl", "sz3")
ALL_COMPRESSOR_NAMES = ("fzmod-default", "fzmod-quality", "fzmod-speed",
                        "fzgpu", "cuszp2", "pfpl", "sz3")


class PipelineAdapter(Compressor):
    """Wraps an FZModules pipeline in the baseline Compressor interface."""

    def __init__(self, pipeline: Pipeline) -> None:
        self.pipeline = pipeline
        self.name = pipeline.name

    def _encode(self, data, eb_abs):  # pragma: no cover - not used
        raise NotImplementedError

    def _decode(self, sections, meta, header):  # pragma: no cover - not used
        raise NotImplementedError

    def compress(self, data: np.ndarray, eb: ErrorBound | float,
                 mode: EbMode | str = EbMode.REL) -> CompressedField:
        """Compress via the wrapped pipeline (uniform interface)."""
        return self.pipeline.compress(data, eb, mode)

    def decompress(self, blob: bytes | CompressedField) -> np.ndarray:
        """Header-driven decode of a pipeline container."""
        if isinstance(blob, CompressedField):
            blob = blob.blob
        return _pipeline_decompress(blob)


def get_compressor(name: str) -> Compressor:
    """Resolve any of the seven evaluated compressors by canonical name."""
    lname = name.lower()
    table = {"cuszp2": CuSZp2, "fzgpu": FZGPU, "pfpl": PFPL, "sz3": SZ3}
    if lname in table:
        return table[lname]()
    if lname in ("fzmod-default", "fzmod-speed", "fzmod-quality"):
        return PipelineAdapter(get_preset(lname))
    raise ConfigError(f"unknown compressor {name!r}; have {ALL_COMPRESSOR_NAMES}")


__all__ = ["Compressor", "CuSZp2", "FZGPU", "PFPL", "SZ3", "PipelineAdapter",
           "get_compressor", "BASELINE_NAMES", "ALL_COMPRESSOR_NAMES"]
