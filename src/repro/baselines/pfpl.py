"""PFPL baseline: quantise + delta + bit-shuffle + zero elimination.

PFPL [Fallin et al., IPDPS'25] is the LC-framework-built portable
compressor: an efficient quantiser followed by delta coding, bit-shuffle
and zero elimination, with strictly enforced error bounds (its "NOA" bound
type equals the value-range-relative bound every other compressor uses
here, per §4.2 of the paper).

On smooth fields the delta stage turns pre-quantised values into near-zero
streams whose shuffled bit planes are almost entirely zero words — the
hierarchical elimination then yields the three-digit ratios PFPL posts at
loose bounds in Table 3 (best GPU-side CR in 9 of 12 cells).
"""

from __future__ import annotations

import numpy as np

from ..core.header import ContainerHeader
from ..errors import CodecError
from ..kernels import bitshuffle as bs
from ..kernels import delta, dictionary, quantize
from .base import Compressor


class PFPL(Compressor):
    """Portable CPU/GPU compressor with guaranteed bounds."""

    name = "pfpl"

    def __init__(self, word_bytes: int = 4, shuffle_block: int = 256) -> None:
        self.word_bytes = word_bytes
        self.shuffle_block = shuffle_block

    def _encode(self, data: np.ndarray, eb_abs: float
                ) -> tuple[dict[str, bytes], dict]:
        grid = quantize.prequantize(data, eb_abs)
        deltas = delta.delta_forward(grid)
        zz = bs.zigzag(deltas)
        if zz.size and int(zz.max()) >= 2**32:
            raise CodecError("error bound too tight for 32-bit bitshuffle")
        shuffled = bs.shuffle(zz.astype(np.uint32), width_bits=32,
                              block=self.shuffle_block)
        z = dictionary.eliminate(shuffled, word_bytes=self.word_bytes)
        return ({"bitmap2": z.bitmap2, "bitmap1": z.bitmap1, "words": z.words},
                {"count": int(zz.size), "orig_len": z.orig_len,
                 "word_bytes": z.word_bytes, "block": self.shuffle_block,
                 "code_fraction": z.nbytes() / data.nbytes})

    def _decode(self, sections: dict[str, bytes], meta: dict,
                header: ContainerHeader) -> np.ndarray:
        z = dictionary.ZeroEliminated(
            bitmap2=sections["bitmap2"], bitmap1=sections["bitmap1"],
            words=sections["words"], orig_len=int(meta["orig_len"]),
            word_bytes=int(meta["word_bytes"]))
        shuffled = dictionary.restore(z)
        zz = bs.unshuffle(shuffled, int(meta["count"]), width_bits=32,
                          block=int(meta["block"]))
        deltas = bs.unzigzag(zz.astype(np.uint64))
        grid = delta.delta_inverse(deltas)
        out = quantize.dequantize(grid, header.eb_abs, header.np_dtype)
        return out.reshape(header.shape)
