"""One-stop evaluation reports.

Bundles the whole evaluation loop — compress, verify, measure quality,
model throughput, compute Eq. (1) speedups on both paper platforms — into
a single call that returns structured rows plus a rendered table.  This
is what ``fzmod report`` prints and what downstream users script against
when they evaluate their own data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .baselines import ALL_COMPRESSOR_NAMES, get_compressor
from .errors import ConfigError
from .metrics import (gradient_fidelity, overall_speedup, psnr, ssim,
                      verify_error_bound)
from .perf import H100, V100, PlatformSpec, RunStats, estimate_throughput


@dataclass(frozen=True)
class ReportRow:
    """One (compressor, eb) evaluation outcome."""

    compressor: str
    eb: float
    cr: float
    bit_rate: float
    psnr_db: float
    ssim: float
    gradient_psnr_db: float
    bound_ok: bool
    modeled_compress_gbps_h100: float
    modeled_compress_gbps_v100: float
    speedup_h100: float
    speedup_v100: float
    compress_seconds: float
    decompress_seconds: float


@dataclass
class EvaluationReport:
    """All rows for one field, plus rendering helpers."""

    field_shape: tuple[int, ...]
    field_bytes: int
    rows: list[ReportRow] = field(default_factory=list)

    def best_by(self, attr: str, eb: float) -> ReportRow:
        """The row maximising ``attr`` at a given bound."""
        rows = [r for r in self.rows if r.eb == eb]
        if not rows:
            raise ConfigError(f"no rows for eb={eb}")
        return max(rows, key=lambda r: getattr(r, attr))

    def table(self) -> str:
        """Render all rows as an aligned text table."""
        lines = [
            f"{'compressor':<15} {'eb':>8} {'CR':>9} {'b/val':>7} "
            f"{'PSNR':>7} {'SSIM':>6} {'gPSNR':>7} {'ok':>3} "
            f"{'GB/s H100':>10} {'spd H100':>9} {'spd V100':>9}"]
        for r in self.rows:
            lines.append(
                f"{r.compressor:<15} {r.eb:>8g} {r.cr:>9.2f} "
                f"{r.bit_rate:>7.3f} {r.psnr_db:>7.1f} {r.ssim:>6.3f} "
                f"{r.gradient_psnr_db:>7.1f} "
                f"{'y' if r.bound_ok else 'N':>3} "
                f"{r.modeled_compress_gbps_h100:>10.1f} "
                f"{r.speedup_h100:>9.2f} {r.speedup_v100:>9.2f}")
        return "\n".join(lines)


def _model(name: str, cf, full_bytes: int, platform: PlatformSpec):
    stats = RunStats(input_bytes=full_bytes, cr=cf.stats.cr,
                     code_fraction=cf.stats.code_fraction,
                     outlier_fraction=cf.stats.outlier_fraction,
                     interp_levels=max(1, cf.stats.interp_levels))
    model_name = name if name in ("fzmod-default", "fzmod-quality",
                                  "fzmod-speed", "fzgpu", "cuszp2", "pfpl",
                                  "sz3") else "fzmod-default"
    return estimate_throughput(model_name, stats, platform)


def evaluate(data: np.ndarray, ebs: tuple[float, ...] = (1e-2, 1e-4),
             compressors: tuple[str, ...] = ALL_COMPRESSOR_NAMES,
             full_size_bytes: int | None = None) -> EvaluationReport:
    """Run the full comparison on one field.

    ``full_size_bytes`` sets the field size used by the throughput model
    (pass the production size when evaluating a down-scaled sample).
    """
    import time
    data = np.asarray(data)
    if data.size == 0:
        raise ConfigError("empty field")
    full_bytes = full_size_bytes or data.nbytes
    rng_v = float(data.max() - data.min())
    report = EvaluationReport(field_shape=data.shape, field_bytes=data.nbytes)
    can_ssim = min(data.shape) >= 8
    for name in compressors:
        comp = get_compressor(name)
        for eb in ebs:
            t0 = time.perf_counter()
            cf = comp.compress(data, eb)
            t1 = time.perf_counter()
            recon = comp.decompress(cf)
            t2 = time.perf_counter()
            th_h = _model(name, cf, full_bytes, H100)
            th_v = _model(name, cf, full_bytes, V100)
            report.rows.append(ReportRow(
                compressor=name, eb=eb, cr=cf.stats.cr,
                bit_rate=cf.stats.bit_rate,
                psnr_db=float(psnr(data, recon)),
                ssim=float(ssim(data, recon)) if can_ssim else float("nan"),
                gradient_psnr_db=float(gradient_fidelity(data, recon)),
                bound_ok=verify_error_bound(data, recon, eb * rng_v),
                modeled_compress_gbps_h100=th_h.compress_gbps,
                modeled_compress_gbps_v100=th_v.compress_gbps,
                speedup_h100=overall_speedup(cf.stats.cr, th_h.compress_bps,
                                             H100.measured_link_bw),
                speedup_v100=overall_speedup(cf.stats.cr, th_v.compress_bps,
                                             V100.measured_link_bw),
                compress_seconds=t1 - t0, decompress_seconds=t2 - t1))
    return report
