"""Seeded synthetic stand-ins for the four SDRBench datasets of Table 2.

The real datasets (CESM-ATM, HACC, Hurricane ISABEL, Nyx) are multi-GB
downloads that are unavailable offline, so each generator reproduces the
*compressibility character* that drives the paper's results instead:

* **CESM-ATM** — 2-D atmosphere slabs (26 vertical levels): smooth zonal
  banding plus multi-scale weather noise; moderately compressible.
* **HACC** — unordered 1-D particle coordinates/velocities: spatially
  clustered but *stored in particle order*, so adjacent values are nearly
  independent — the hardest case (CR ~2 at tight bounds in Table 3, Huffman
  stress case).
* **HURR** — hurricane simulation volume: a coherent vortex plus boundary
  turbulence; smooth but anisotropic.
* **Nyx** — cosmology fields: log-normal baryon density with a steep power
  spectrum.  The huge dynamic range means a *value-range-relative* bound at
  1e-2 quantises almost everything to zero — the source of the three-to-
  five-digit CRs in Table 3's Nyx rows.

All generators are deterministic in ``seed`` and support a ``scale`` that
shrinks the grid while preserving the spectral character, so tests run in
milliseconds and benches can turn fidelity up.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def gaussian_random_field(shape: tuple[int, ...], slope: float,
                          seed: int = 0, cutoff: float | None = None,
                          modes: float | None = None) -> np.ndarray:
    """Isotropic Gaussian random field with power spectrum ``k**-slope``.

    The standard FFT construction: white noise shaped in frequency space.
    Larger ``slope`` -> smoother field.  Two band-limits are available:

    ``cutoff``
        in cycles/sample (Nyquist = 0.5): a *grid-relative* limit.
    ``modes``
        in cycles/domain: a *physical* limit.  Production simulation output
        resolves its physics with a fixed number of structures across the
        domain, so a down-scaled surrogate generated with ``modes`` keeps
        the same per-cell smoothness character as the full-size field —
        which is what makes compression ratios converge toward the paper's
        as the grid grows, instead of being artificially hard on small test
        grids.

    Returns float64, zero mean, unit variance.
    """
    if any(n < 1 for n in shape):
        raise DataError(f"bad field shape {shape}")
    rng = _rng(seed)
    white = rng.standard_normal(shape)
    spec = np.fft.rfftn(white)
    freqs = np.meshgrid(*[np.fft.fftfreq(n) for n in shape[:-1]]
                        + [np.fft.rfftfreq(shape[-1])], indexing="ij")
    k = np.sqrt(sum(g * g for g in freqs))
    k[(0,) * k.ndim] = np.inf  # keep the mean at zero
    spec *= k ** (-slope / 2.0)
    if cutoff is not None:
        if not (0.0 < cutoff <= 0.5 * np.sqrt(len(shape))):
            raise DataError(f"cutoff {cutoff} outside (0, Nyquist]")
        spec *= np.exp(-((k / cutoff) ** 4))
    if modes is not None:
        if modes <= 0:
            raise DataError(f"modes must be positive, got {modes}")
        # cycles per domain: f_i * n_i counts whole waves along axis i
        kd = np.sqrt(sum((g * n) ** 2 for g, n in zip(freqs, shape)))
        kd[(0,) * kd.ndim] = np.inf
        spec *= np.exp(-((kd / modes) ** 4))
    field = np.fft.irfftn(spec, s=shape, axes=tuple(range(len(shape))))
    std = field.std()
    if std > 0:
        field /= std
    return field


def _scaled(dims: tuple[int, ...], scale: float) -> tuple[int, ...]:
    if scale <= 0 or scale > 1:
        raise DataError(f"scale must be in (0, 1], got {scale}")
    return tuple(max(8, int(round(n * scale))) for n in dims)


# --------------------------------------------------------------------- #
# CESM-ATM: 3600 x 1800 x 26 climate slabs                               #
# --------------------------------------------------------------------- #
CESM_DIMS = (26, 1800, 3600)
CESM_FIELDS = ("CLDHGH", "CLDLOW", "T", "U", "V", "Q", "PS", "FLDS")


def cesm_like(field: str = "T", scale: float = 0.05, seed: int = 1
              ) -> np.ndarray:
    """A CESM-ATM-like 3-D slab stack (levels, lat, lon), float32."""
    if field not in CESM_FIELDS:
        raise DataError(f"unknown CESM field {field!r}; have {CESM_FIELDS}")
    nz, ny, nx = _scaled(CESM_DIMS, scale)
    fseed = seed * 1000 + CESM_FIELDS.index(field)
    shape = (nz, ny, nx)
    lat = np.linspace(-np.pi / 2, np.pi / 2, ny)
    # zonal banding: strong latitudinal structure, weak longitudinal.
    # Fine-scale roughness is kept small: production climate fields are
    # smooth at grid scale, which is what gives the loose-bound CRs of
    # Table 3 their magnitude.  Field character varies deliberately —
    # Table 3 averages over *all* fields, and the dataset's extreme average
    # CRs come from sparse/heavy-tailed members (cloud fractions, moisture),
    # not from temperature-like fields.
    band = (np.cos(lat)[None, :, None]
            * np.linspace(1.0, 0.2, nz)[:, None, None])
    noise = gaussian_random_field(shape, slope=3.0, seed=fseed, modes=40)
    if field in ("CLDHGH", "CLDLOW"):
        # cloud fraction in [0, 1]: mostly exactly zero with smooth patches
        patches = gaussian_random_field(shape, slope=3.2, seed=fseed,
                                        modes=25)
        data = np.clip(patches - 0.8, 0.0, None)
        data = np.minimum(data * 1.5, 1.0)
    elif field == "Q":
        # specific humidity: log-distributed, decays with altitude
        z = np.linspace(0, 1, nz)[:, None, None]
        data = np.exp(1.8 * noise - 4.0 * z) * 1.5e-2
    elif field == "PS":
        smooth = gaussian_random_field(shape, slope=4.0, seed=fseed,
                                       modes=8)
        data = 1.0e5 + 4.0e3 * smooth + 2.0e3 * band
    elif field == "FLDS":
        smooth = gaussian_random_field(shape, slope=3.5, seed=fseed,
                                       modes=15)
        data = 320.0 + 60.0 * band + 25.0 * smooth
    else:  # T, U, V: banded fields with moderate weather noise
        rough = gaussian_random_field(shape, slope=2.0, seed=fseed + 7)
        data = 250.0 + 60.0 * band + 8.0 * noise + 0.01 * rough
    return data.astype(np.float32)


# --------------------------------------------------------------------- #
# HACC: 280,953,867 particles, 1-D                                       #
# --------------------------------------------------------------------- #
HACC_COUNT = 280_953_867
HACC_FIELDS = ("x", "y", "z", "vx", "vy", "vz")


def hacc_like(field: str = "x", scale: float = 0.004, seed: int = 2
              ) -> np.ndarray:
    """HACC-like particle data: clustered positions in particle order.

    Positions cluster around halo centres but particles are stored
    unordered, so consecutive values jump across the whole box — prediction
    gains little, matching HACC's low CRs in Table 3.
    """
    if field not in HACC_FIELDS:
        raise DataError(f"unknown HACC field {field!r}; have {HACC_FIELDS}")
    n = max(1 << 12, int(HACC_COUNT * scale))
    rng = _rng(seed * 1000 + HACC_FIELDS.index(field))
    box = 256.0
    if field in ("x", "y", "z"):
        # HACC stores particles grouped by the rank/halo that owns them, so
        # consecutive values share a neighbourhood (jitter ~ halo radius)
        # while block boundaries jump across the box — which is why HACC
        # compresses well at 1e-2 but collapses to CR ~ 2 at 1e-6.
        nhalos = max(8, n // 4096)
        centers = rng.uniform(0, box, nhalos)
        assign = np.sort(rng.integers(0, nhalos, n))
        jitter = rng.standard_normal(n) * rng.exponential(0.8, n)
        data = np.mod(centers[assign] + jitter, box)
        # a few percent of stragglers break the locality, as in real traces
        stray = rng.random(n) < 0.02
        data[stray] = rng.uniform(0, box, int(stray.sum()))
    else:
        bulk = rng.standard_normal(n) * 300.0
        thermal = rng.standard_normal(n) * 80.0
        data = bulk + thermal
    return data.astype(np.float32)


# --------------------------------------------------------------------- #
# Hurricane ISABEL: 100 x 500 x 500                                      #
# --------------------------------------------------------------------- #
HURR_DIMS = (100, 500, 500)
HURR_FIELDS = ("U", "V", "W", "TC", "P", "QVAPOR")


def hurricane_like(field: str = "U", scale: float = 0.2, seed: int = 3
                   ) -> np.ndarray:
    """A hurricane-like volume: rotating vortex + turbulence, float32."""
    if field not in HURR_FIELDS:
        raise DataError(f"unknown HURR field {field!r}; have {HURR_FIELDS}")
    nz, ny, nx = _scaled(HURR_DIMS, scale)
    fseed = seed * 1000 + HURR_FIELDS.index(field)
    z, y, x = np.meshgrid(np.linspace(0, 1, nz),
                          np.linspace(-1, 1, ny),
                          np.linspace(-1, 1, nx), indexing="ij")
    r = np.sqrt(x * x + y * y) + 1e-3
    swirl = np.exp(-((r - 0.25) ** 2) / 0.05) * (1.0 - 0.5 * z)
    if field == "U":
        base = -swirl * (y / r) * 50.0
    elif field == "V":
        base = swirl * (x / r) * 50.0
    elif field == "W":
        base = swirl * 5.0 * np.sin(np.pi * z)
    elif field == "TC":
        base = 25.0 - 60.0 * z + 10.0 * swirl
    elif field == "P":
        base = 1000.0 - 900.0 * z - 50.0 * swirl
    else:  # QVAPOR: log-distributed moisture, heavy tail near the surface
        lg = gaussian_random_field((nz, ny, nx), slope=3.0, seed=fseed + 5,
                                   modes=30)
        base = np.exp(-5.0 * z + 1.5 * lg) * 0.02 * (1.0 + swirl)
    turb_amp = 0.002 if field in ("P", "TC") else 0.01
    turb = gaussian_random_field((nz, ny, nx), slope=2.8, seed=fseed,
                                 modes=60)
    fine = gaussian_random_field((nz, ny, nx), slope=2.0, seed=fseed + 9)
    return (base + turb_amp * np.ptp(base) * turb
            + 2e-4 * np.ptp(base) * fine).astype(np.float32)


# --------------------------------------------------------------------- #
# Nyx: 512^3 cosmology                                                   #
# --------------------------------------------------------------------- #
NYX_DIMS = (512, 512, 512)
NYX_FIELDS = ("baryon_density", "dark_matter_density", "temperature",
              "velocity_x", "velocity_y", "velocity_z")


def nyx_like(field: str = "baryon_density", scale: float = 0.125, seed: int = 4
             ) -> np.ndarray:
    """Nyx-like cosmology fields, float32.

    Density fields are log-normal with a steep spectrum: a handful of halo
    peaks set the value range, so relative error bounds at 1e-2 wipe out
    nearly all structure -> extreme CRs, exactly Table 3's Nyx behaviour.
    """
    if field not in NYX_FIELDS:
        raise DataError(f"unknown Nyx field {field!r}; have {NYX_FIELDS}")
    dims = _scaled(NYX_DIMS, scale)
    fseed = seed * 1000 + NYX_FIELDS.index(field)
    grf = gaussian_random_field(dims, slope=3.2, seed=fseed, modes=60)
    if field.endswith("density"):
        # heavy log-normal tail: a handful of halo peaks dominate the value
        # range, so a 1e-2 *relative* bound zeroes nearly every voxel --
        # the mechanism behind Table 3's three-to-five digit Nyx CRs.
        data = np.exp(4.5 * grf) * 1e8
    elif field == "temperature":
        data = np.exp(2.0 * grf) * 1e4
    else:
        data = grf * 2.0e7 + gaussian_random_field(
            dims, slope=2.6, seed=fseed + 13, modes=90) * 4.0e5
    return data.astype(np.float32)


# --------------------------------------------------------------------- #
# Additional SDRBench families (beyond the paper's Table 2)              #
# --------------------------------------------------------------------- #
MIRANDA_DIMS = (256, 384, 384)
MIRANDA_FIELDS = ("density", "viscocity", "pressure")


def miranda_like(field: str = "density", scale: float = 0.1, seed: int = 5
                 ) -> np.ndarray:
    """Miranda-like radiation-hydrodynamics turbulence (SDRBench family).

    Miranda fields are famously smooth (high CRs across compressors):
    fully-developed turbulence with a steep spectrum and no sharp
    material discontinuities at this resolution.
    """
    if field not in MIRANDA_FIELDS:
        raise DataError(f"unknown Miranda field {field!r}; "
                        f"have {MIRANDA_FIELDS}")
    dims = _scaled(MIRANDA_DIMS, scale)
    fseed = seed * 1000 + MIRANDA_FIELDS.index(field)
    turb = gaussian_random_field(dims, slope=3.7, seed=fseed, modes=50)
    fine = gaussian_random_field(dims, slope=2.5, seed=fseed + 3, modes=120)
    base = 1.0 + 0.3 * turb + 0.02 * fine
    if field == "pressure":
        base = np.abs(base) ** 1.4
    return base.astype(np.float32)


S3D_DIMS = (11, 500, 500)
S3D_FIELDS = ("temp", "pressure", "vel_x", "Y_OH")


def s3d_like(field: str = "temp", scale: float = 0.15, seed: int = 6
             ) -> np.ndarray:
    """S3D-like combustion slices: a thin reacting front (sharp feature)
    embedded in smooth flow — the classic hard case for interpolation
    predictors (front pixels become outliers)."""
    if field not in S3D_FIELDS:
        raise DataError(f"unknown S3D field {field!r}; have {S3D_FIELDS}")
    nz, ny, nx = _scaled(S3D_DIMS, scale)
    fseed = seed * 1000 + S3D_FIELDS.index(field)
    y, x = np.meshgrid(np.linspace(-1, 1, ny), np.linspace(-1, 1, nx),
                       indexing="ij")
    wrinkle = gaussian_random_field((ny, nx), slope=3.0, seed=fseed,
                                    modes=12)
    front = np.tanh((x + 0.15 * wrinkle) / 0.02)   # thin flame front
    smooth = gaussian_random_field((nz, ny, nx), slope=3.2, seed=fseed + 7,
                                   modes=30)
    if field == "temp":
        base = 900.0 + 700.0 * front[None] + 40.0 * smooth
    elif field == "pressure":
        base = 1.0e5 * (1.0 + 0.01 * smooth)
    elif field == "Y_OH":
        base = np.exp(-((x + 0.15 * wrinkle) / 0.05) ** 2)[None] \
            * (0.01 + 0.002 * smooth)
    else:
        base = 30.0 * smooth + 10.0 * front[None]
    return base.astype(np.float32)
