"""Dataset substrate: SDRBench-style catalog + synthetic generators."""

from .sdrbench import (CATALOG, DATASET_NAMES, DatasetSpec, export_dataset,
                       get_dataset, load_field, load_raw_file, table2_rows)
from .synthetic import (cesm_like, gaussian_random_field, hacc_like,
                        hurricane_like, miranda_like, nyx_like, s3d_like)

__all__ = [
    "CATALOG", "DATASET_NAMES", "DatasetSpec", "export_dataset",
    "get_dataset", "load_field",
    "load_raw_file", "table2_rows", "cesm_like", "gaussian_random_field",
    "hacc_like", "hurricane_like", "miranda_like", "nyx_like", "s3d_like",
]
