"""SDRBench-style dataset catalog and loader.

Mirrors the structure of the Scientific Data Reduction Benchmarks used in
the paper (Table 2): each dataset has a name, logical dimensions, a set of
named fields, and a loader.  Loading resolves to the synthetic generators
of :mod:`repro.data.synthetic` by default, or to raw ``.f32``/``.f64``
files on disk when a path is given (the format SDRBench distributes),
so a user with the real data can re-run every experiment unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import DataError
from . import synthetic as syn


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset (a row of the paper's Table 2)."""

    name: str
    domain: str
    full_dims: tuple[int, ...]
    field_size_bytes: int
    total_fields: int
    fields: tuple[str, ...]
    generator: Callable[..., np.ndarray]
    default_scale: float
    #: True for the four datasets of the paper's Table 2
    in_paper: bool = True

    @property
    def elements(self) -> int:
        return int(np.prod(self.full_dims))

    def load(self, field: str | None = None, scale: float | None = None,
             seed: int | None = None) -> np.ndarray:
        """Generate (or load) one field at the given scale."""
        kwargs = {}
        if field is not None:
            kwargs["field"] = field
        if seed is not None:
            kwargs["seed"] = seed
        kwargs["scale"] = scale if scale is not None else self.default_scale
        return self.generator(**kwargs)

    def load_all(self, scale: float | None = None):
        """Yield ``(field_name, array)`` for every field."""
        for f in self.fields:
            yield f, self.load(field=f, scale=scale)


CATALOG: dict[str, DatasetSpec] = {
    "cesm": DatasetSpec(
        name="CESM-ATM", domain="climate simulation",
        full_dims=(26, 1800, 3600), field_size_bytes=673_900_000,
        total_fields=33, fields=syn.CESM_FIELDS,
        generator=syn.cesm_like, default_scale=0.05),
    "hacc": DatasetSpec(
        name="HACC", domain="cosmology: particle",
        full_dims=(280_953_867,), field_size_bytes=1_120_000_000,
        total_fields=6, fields=syn.HACC_FIELDS,
        generator=syn.hacc_like, default_scale=0.004),
    "hurr": DatasetSpec(
        name="HURR", domain="hurricane simulation",
        full_dims=(100, 500, 500), field_size_bytes=100_000_000,
        total_fields=20, fields=syn.HURR_FIELDS,
        generator=syn.hurricane_like, default_scale=0.2),
    "nyx": DatasetSpec(
        name="Nyx", domain="cosmology simulation",
        full_dims=(512, 512, 512), field_size_bytes=536_870_912,
        total_fields=6, fields=syn.NYX_FIELDS,
        generator=syn.nyx_like, default_scale=0.125),
    # Additional SDRBench families (not in the paper's Table 2, provided
    # for users evaluating their own workloads against more regimes)
    "miranda": DatasetSpec(
        name="Miranda", domain="radiation hydrodynamics",
        full_dims=(256, 384, 384), field_size_bytes=150_994_944,
        total_fields=3, fields=syn.MIRANDA_FIELDS,
        generator=syn.miranda_like, default_scale=0.1, in_paper=False),
    "s3d": DatasetSpec(
        name="S3D", domain="combustion simulation",
        full_dims=(11, 500, 500), field_size_bytes=11_000_000,
        total_fields=4, fields=syn.S3D_FIELDS,
        generator=syn.s3d_like, default_scale=0.15, in_paper=False),
}

DATASET_NAMES = tuple(CATALOG)


def get_dataset(name: str) -> DatasetSpec:
    """Look a dataset spec up by its catalog key."""
    try:
        return CATALOG[name.lower()]
    except KeyError:
        raise DataError(f"unknown dataset {name!r}; have {sorted(CATALOG)}") from None


def load_field(dataset: str, field: str | None = None,
               scale: float | None = None, seed: int | None = None) -> np.ndarray:
    """Convenience: ``load_field("nyx", "temperature")``."""
    return get_dataset(dataset).load(field=field, scale=scale, seed=seed)


def load_raw_file(path: str, dims: tuple[int, ...],
                  dtype: str = "f4", *, mmap: bool = False) -> np.ndarray:
    """Load an SDRBench raw binary field (row-major, little-endian).

    ``mmap=True`` maps the file read-only instead of reading it — the
    out-of-core path: pages fault in as rows are touched, and the
    streaming engine (:mod:`repro.streaming`) drops them again once a
    slab is consumed, so fields far larger than RAM stay usable.  The
    returned ``np.memmap`` feeds ``compress_stream`` directly (via
    :func:`repro.streaming.as_source`).
    """
    dt = np.dtype(dtype).newbyteorder("<")
    if dt.kind != "f":
        raise DataError(f"expected a float dtype, got {dtype!r}")
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    expected = int(np.prod(dims)) * dt.itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise DataError(f"{path}: size {actual} does not match dims {dims} "
                        f"({expected} bytes expected)")
    if mmap:
        return np.memmap(path, dtype=dt, mode="r", shape=tuple(dims))
    return np.fromfile(path, dtype=dt).reshape(dims)


def table2_rows() -> list[dict[str, str]]:
    """Rows matching the paper's Table 2 (for the bench harness printer)."""
    rows = []
    for spec in CATALOG.values():
        if not spec.in_paper:
            continue
        dims = "x".join(str(d) for d in reversed(spec.full_dims))
        rows.append({
            "Dataset": spec.name,
            "Domain": spec.domain,
            "Field Size": f"{spec.field_size_bytes / 1e6:.1f} MB",
            "Dimensions": dims,
            "#Fields": f"{spec.total_fields} in total",
        })
    return rows


def export_dataset(name: str, directory: str, scale: float | None = None,
                   seed: int | None = None) -> dict:
    """Write a dataset's fields as SDRBench-layout raw ``.f32`` files.

    Produces one ``<field>_<dims>.f32`` per field plus a ``manifest.json``
    (dims, dtype, seed, scale), so external compressors/tools can be
    evaluated against exactly the surrogates this repo uses.  Returns the
    manifest dict.
    """
    import json
    import os
    spec = get_dataset(name)
    os.makedirs(directory, exist_ok=True)
    manifest: dict = {"dataset": spec.name, "scale": scale
                      if scale is not None else spec.default_scale,
                      "seed": seed, "fields": []}
    for field in spec.fields:
        data = spec.load(field=field, scale=scale, seed=seed)
        dims = "x".join(str(d) for d in reversed(data.shape))
        fname = f"{field}_{dims}.f32"
        data.tofile(os.path.join(directory, fname))
        manifest["fields"].append({"name": field, "file": fname,
                                   "shape": list(data.shape),
                                   "dtype": str(data.dtype)})
    with open(os.path.join(directory, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest
