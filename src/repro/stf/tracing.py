"""Schedule analysis and rendering for STF execution reports.

Provides the numbers the paper's §3.3.1 discussion is about — how much
task-level concurrency a pipeline exposes — plus a text Gantt rendering for
examples and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..obs.spans import SpanRecord
from .graph import GraphBuilder
from .scheduler import ExecutionReport


@dataclass(frozen=True)
class ScheduleSummary:
    """Headline schedule metrics."""

    makespan: float
    serial_time: float
    critical_path: float
    overlap_speedup: float      # serial / makespan
    graph_width: int            # max level parallelism

    def __str__(self) -> str:
        return (f"makespan={self.makespan * 1e3:.3f} ms  "
                f"serial={self.serial_time * 1e3:.3f} ms  "
                f"critical-path={self.critical_path * 1e3:.3f} ms  "
                f"overlap-speedup={self.overlap_speedup:.2f}x  "
                f"width={self.graph_width}")


def critical_path_seconds(builder: GraphBuilder) -> float:
    """Longest weighted path through the executed DAG (task durations)."""
    g = nx.DiGraph()
    for t in builder.tasks:
        g.add_node(t.id, w=t.sim_end - t.sim_start)
    for u, v in builder.graph.edges:
        g.add_edge(u, v)
    best: dict[int, float] = {}
    for n in nx.topological_sort(g):
        w = g.nodes[n]["w"]
        best[n] = w + max((best[p] for p in g.predecessors(n)), default=0.0)
    return max(best.values(), default=0.0)


def summarize(builder: GraphBuilder, report: ExecutionReport) -> ScheduleSummary:
    """Compute the headline schedule metrics for a run."""
    return ScheduleSummary(
        makespan=report.makespan,
        serial_time=report.serial_time(),
        critical_path=critical_path_seconds(builder),
        overlap_speedup=report.overlap_speedup(),
        graph_width=builder.width(),
    )


def to_dot(builder: GraphBuilder) -> str:
    """GraphViz DOT rendering of the inferred task DAG.

    Nodes are labelled ``name@device``; useful for documenting/debugging a
    pipeline's inferred structure (``dot -Tsvg flow.dot``).
    """
    lines = ["digraph stf {", "  rankdir=LR;",
             '  node [shape=box, fontname="monospace"];']
    for t in builder.tasks:
        color = "lightblue" if t.device_name.startswith("gpu") else "wheat"
        lines.append(f'  t{t.id} [label="{t.name}\\n{t.device_name}", '
                     f'style=filled, fillcolor={color}];')
    for u, v in builder.graph.edges:
        lines.append(f"  t{u} -> t{v};")
    lines.append("}")
    return "\n".join(lines)


def timeline_json(report: ExecutionReport) -> list[dict]:
    """The simulated schedule as plain records (one per interval), ready
    for external plotting/tracing tools (chrome://tracing-style)."""
    return [{"resource": iv.resource, "label": iv.label,
             "start": iv.start, "end": iv.end}
            for iv in report.clock.intervals]


def report_spans(report: ExecutionReport) -> list[SpanRecord]:
    """The simulated schedule re-expressed as telemetry spans.

    Each booked interval becomes one :class:`~repro.obs.spans.SpanRecord`
    with ``lane="stf:<resource>"``, so the Chrome/JSONL/Perfetto
    exporters of :mod:`repro.obs` serve the STF engine with the same code
    path as the default and sharded engines — resources (devices, links)
    appear as separate process lanes, exactly like shard workers.
    Simulated times start at 0, so traces begin at ts=0.
    """
    out: list[SpanRecord] = []
    for k, iv in enumerate(report.clock.intervals):
        out.append(SpanRecord(
            name="stf.interval", start=float(iv.start), end=float(iv.end),
            span_id=k + 1, parent_id=None, thread="sim",
            lane=f"stf:{iv.resource}",
            attrs={"label": iv.label, "resource": iv.resource}))
    return out


def gantt(report: ExecutionReport, width: int = 72) -> str:
    """ASCII Gantt chart of the simulated schedule, one row per resource."""
    intervals = report.clock.intervals
    if not intervals:
        return "(empty schedule)"
    span = report.makespan or 1.0
    rows: dict[str, list] = {}
    for iv in intervals:
        rows.setdefault(iv.resource, []).append(iv)
    name_w = max(len(r) for r in rows)
    lines = [f"{'resource':<{name_w}} | 0 {'.' * (width - 8)} {span * 1e3:.3f} ms"]
    for resource in sorted(rows):
        line = [" "] * width
        for iv in rows[resource]:
            a = int(iv.start / span * (width - 1))
            b = max(a + 1, int(iv.end / span * (width - 1)) + 1)
            for i in range(a, min(b, width)):
                line[i] = "#" if line[i] == " " else "+"
        lines.append(f"{resource:<{name_w}} | {''.join(line)}")
    return "\n".join(lines)
