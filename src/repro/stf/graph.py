"""Dependency-graph inference for sequential task flows.

CUDASTF's core idea: the user declares tasks *in program order* with
read/write access sets, and the engine derives the dependency DAG from the
standard hazards —

* **RAW** — a reader depends on the last writer of each datum it reads;
* **WAW** — a writer depends on the previous writer;
* **WAR** — a writer depends on every reader since the previous write.

Because edges always point from earlier to later declarations the result is
acyclic by construction; we still assert it with networkx (cheap insurance
against future refactors) and reuse the same graph for critical-path
analysis in :mod:`repro.stf.tracing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import StfError
from .task import Task


@dataclass
class GraphBuilder:
    """Incrementally derives the task DAG as tasks are declared."""

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    _last_writer: dict[int, Task] = field(default_factory=dict)
    _readers_since_write: dict[int, list[Task]] = field(default_factory=dict)
    tasks: list[Task] = field(default_factory=list)

    def add_task(self, task: Task) -> list[Task]:
        """Register ``task``; returns its inferred predecessor tasks."""
        deps: dict[int, Task] = {}
        for acc in task.accesses:
            ld = acc.data.id
            if acc.mode.reads:
                w = self._last_writer.get(ld)
                if w is not None:
                    deps[w.id] = w
                elif not acc.data.defined:
                    raise StfError(
                        f"task {task.name!r} reads {acc.data.name!r}, which "
                        "has no initial value and no prior writer")
            if acc.mode.writes:
                w = self._last_writer.get(ld)
                if w is not None:
                    deps[w.id] = w
                for r in self._readers_since_write.get(ld, ()):
                    if r.id != task.id:
                        deps[r.id] = r
        # update hazard bookkeeping *after* scanning all accesses
        for acc in task.accesses:
            ld = acc.data.id
            if acc.mode.writes:
                self._last_writer[ld] = task
                self._readers_since_write[ld] = []
            if acc.mode.reads and not acc.mode.writes:
                self._readers_since_write.setdefault(ld, []).append(task)

        self.graph.add_node(task.id, task=task)
        for dep in deps.values():
            self.graph.add_edge(dep.id, task.id)
        self.tasks.append(task)
        return list(deps.values())

    def predecessors(self, task: Task) -> list[Task]:
        """Tasks this task depends on."""
        return [self.graph.nodes[p]["task"] for p in self.graph.predecessors(task.id)]

    def successors(self, task: Task) -> list[Task]:
        """Tasks depending on this task."""
        return [self.graph.nodes[s]["task"] for s in self.graph.successors(task.id)]

    def validate(self) -> None:
        """Assert the graph is acyclic (cheap insurance)."""
        if not nx.is_directed_acyclic_graph(self.graph):  # pragma: no cover
            raise StfError("task graph contains a cycle")

    def topological(self) -> list[Task]:
        """Tasks in a dependency-respecting order (declaration order works
        by construction, but we return an explicit topo sort for clarity)."""
        self.validate()
        return [self.graph.nodes[n]["task"]
                for n in nx.lexicographical_topological_sort(self.graph)]

    def roots(self) -> list[Task]:
        """Tasks with no dependencies."""
        return [self.graph.nodes[n]["task"] for n in self.graph.nodes
                if self.graph.in_degree(n) == 0]

    def width(self) -> int:
        """Size of the largest antichain level (max available parallelism)."""
        if not self.graph:
            return 0
        levels: dict[int, int] = {}
        for n in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(n))
            levels[n] = 1 + max((levels[p] for p in preds), default=-1)
        from collections import Counter
        return max(Counter(levels.values()).values())
