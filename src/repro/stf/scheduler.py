"""Execution engines for sequential task flows.

Two executors share the same semantics and produce bit-identical data:

* **serial** — runs tasks in declaration order on the calling thread.
* **async** — runs tasks on a thread pool as soon as their dependencies
  complete (kernels are NumPy calls, which release the GIL for most of
  their work, so genuinely overlapping execution is possible).

Both record, per task, the host<->device transfers the engine inserted and
the measured kernel wall time.  A deterministic *replay* pass then books
everything on simulated per-resource timelines (device queues + full-duplex
links) to produce the schedule a real heterogeneous node would see — this
is what the §3.3.1 overlap demo measures.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (FIRST_COMPLETED, Executor, Future,
                                ThreadPoolExecutor, wait)
from dataclasses import dataclass, field

import numpy as np

from ..errors import StfError
from ..obs.spans import span
from ..runtime.clock import SimClock
from ..runtime.device import DeviceRegistry
from ..runtime.memory import Buffer, MemorySpace
from ..runtime.transfer import TransferStats, link_name, transfer_seconds
from .graph import GraphBuilder
from .logical_data import LogicalData
from .task import Task, TaskState


@dataclass
class TransferRecord:
    """One engine-inserted transfer (for replay and assertions)."""

    ld_id: int
    src: str
    dst: str
    nbytes: int


@dataclass
class ExecutionReport:
    """What happened: real measurements plus the simulated schedule."""

    tasks: list[Task]
    clock: SimClock
    stats: TransferStats
    transfers: dict[int, list[TransferRecord]] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.clock.makespan

    def serial_time(self) -> float:
        """Total simulated occupancy (tasks *and* transfers) if everything
        ran back-to-back — the no-overlap schedule length."""
        return self.clock.serial_time()

    def serial_compute_time(self) -> float:
        """Task durations only (excludes transfer occupancy)."""
        return sum(t.sim_end - t.sim_start for t in self.tasks)

    def overlap_speedup(self) -> float:
        """Simulated serial-time / makespan (1.0 = no overlap extracted)."""
        ms = self.makespan
        return self.serial_time() / ms if ms > 0 else 1.0


class Scheduler:
    """Executes a built task graph against a device registry."""

    def __init__(self, registry: DeviceRegistry, builder: GraphBuilder) -> None:
        self.registry = registry
        self.builder = builder
        self._lock = threading.Lock()
        self._transfers: dict[int, list[TransferRecord]] = {}
        self.stats = TransferStats()

    # ------------------------------------------------------------------ #
    # real execution                                                      #
    # ------------------------------------------------------------------ #
    def _space(self, device_name: str) -> MemorySpace:
        return MemorySpace(self.registry.get(device_name))

    def _stage_inputs(self, task: Task) -> list[np.ndarray]:
        """Ensure operands are resident on the task's device; return the
        arrays of the *reading* accesses in declaration order (pure write()
        accesses are produced by the task's return value instead)."""
        space = self._space(task.device_name)
        records = self._transfers.setdefault(task.id, [])
        args: list[np.ndarray] = []
        with self._lock:
            for acc in task.accesses:
                ld = acc.data
                if not acc.mode.reads:
                    continue
                if space.name not in ld.valid:
                    src_name, src_buf = ld.valid_instance()
                    dst_buf = Buffer(src_buf.array.copy(), space)
                    self.stats.record(src_name, space.name, src_buf.nbytes)
                    records.append(TransferRecord(ld_id=ld.id, src=src_name,
                                                  dst=space.name,
                                                  nbytes=src_buf.nbytes))
                    ld.set_instance(space, dst_buf, ready=0.0, exclusive=False)
                args.append(ld.instances[space.name].array)
        return args

    def _commit_outputs(self, task: Task, args: list[np.ndarray],
                        result: object) -> None:
        space = self._space(task.device_name)
        writes = task.write_accesses()
        pure_writes = [a for a in writes if not a.mode.reads]
        returned: list[np.ndarray]
        if result is None:
            returned = []
        elif isinstance(result, (tuple, list)):
            returned = [np.asarray(r) for r in result]
        else:
            returned = [np.asarray(result)]
        if pure_writes and len(returned) != len(pure_writes):
            raise StfError(
                f"task {task.name!r} has {len(pure_writes)} write() accesses "
                f"but returned {len(returned)} arrays")
        if not pure_writes and returned:
            raise StfError(f"task {task.name!r} returned data but declares no "
                           "write() access (use rw() for in-place updates)")
        with self._lock:
            for acc, arr in zip(pure_writes, returned):
                acc.data.set_instance(space, Buffer(arr, space), ready=0.0,
                                      exclusive=True)
            for acc in writes:
                if acc.mode.reads:  # rw: mutated in place
                    buf = acc.data.instances[space.name]
                    acc.data.set_instance(space, buf, ready=0.0, exclusive=True)

    def _run_task(self, task: Task) -> None:
        task.state = TaskState.RUNNING
        try:
            args = self._stage_inputs(task)
            t0 = time.perf_counter()
            with span("stf.task", task=task.name, device=task.device_name):
                result = task.fn(*args)
            task.wall_seconds = time.perf_counter() - t0
            self._commit_outputs(task, args, result)
            task.state = TaskState.DONE
        except BaseException as exc:  # noqa: BLE001 - recorded on task, re-raised
            task.state = TaskState.FAILED
            task.error = exc
            raise

    def run_serial(self) -> None:
        """Execute every task on the calling thread, in declaration order."""
        for task in self.builder.tasks:
            self._run_task(task)

    def run_async(self, workers: int = 4) -> None:
        """Thread-pool execution honouring the inferred DAG."""
        with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
            self.run_pool(pool)

    def run_pool(self, pool: Executor,
                 max_in_flight: int | None = None) -> None:
        """Execute the DAG on an externally owned worker pool.

        The scheduler does not size, own, or shut down ``pool`` — several
        schedulers can drive the same executor concurrently, which is how
        the sharded parallel engine overlaps DAG tasks *across* shards:
        one pool, one in-flight budget, many per-shard task flows.

        ``max_in_flight`` caps how many of this scheduler's tasks may be
        submitted-but-unfinished at once (backpressure against the shared
        pool); ``None`` submits every ready task immediately.
        """
        if max_in_flight is not None and max_in_flight < 1:
            raise StfError(f"max_in_flight must be >= 1, got {max_in_flight}")
        graph = self.builder.graph
        indeg = {t.id: graph.in_degree(t.id) for t in self.builder.tasks}
        by_id = {t.id: t for t in self.builder.tasks}
        queue = [t for t in self.builder.tasks if indeg[t.id] == 0]
        pending: set[Future] = set()
        failed: list[BaseException] = []
        futures: dict[Future, Task] = {}

        def submit_ready() -> None:
            while queue and (max_in_flight is None
                             or len(pending) < max_in_flight):
                task = queue.pop(0)
                fut = pool.submit(self._run_task, task)
                futures[fut] = task
                pending.add(fut)

        submit_ready()
        done_count = 0
        total = len(self.builder.tasks)
        while done_count < total and pending and not failed:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                task = futures.pop(fut)
                exc = fut.exception()
                if exc is not None:
                    failed.append(exc)
                    continue
                done_count += 1
                for succ in self.builder.graph.successors(task.id):
                    indeg[succ] -= 1
                    if indeg[succ] == 0:
                        queue.append(by_id[succ])
            if not failed:
                submit_ready()
        if failed:
            raise failed[0]

    # ------------------------------------------------------------------ #
    # deterministic timeline replay                                       #
    # ------------------------------------------------------------------ #
    def _task_duration(self, task: Task) -> float:
        operand_bytes = sum(
            acc.data.instances[s].nbytes
            for acc in task.accesses
            for s in [task.device_name] if s in acc.data.instances)
        dur = task.modeled_seconds(operand_bytes)
        return task.wall_seconds if dur is None else dur

    def _schedule_order(self, order: str) -> list[Task]:
        """Task replay order: FIFO declaration order, or critical-path
        (HEFT-style upward-rank) priority among ready tasks."""
        if order == "declaration":
            return list(self.builder.tasks)
        if order != "critical-path":
            raise StfError(f"unknown simulation order {order!r}")
        durations = {t.id: self._task_duration(t) for t in self.builder.tasks}
        # upward rank: longest duration-weighted path to any sink
        rank: dict[int, float] = {}
        for t in reversed(self.builder.tasks):  # reverse topological
            succ = [rank[s.id] for s in self.builder.successors(t)]
            rank[t.id] = durations[t.id] + max(succ, default=0.0)
        indeg = {t.id: self.builder.graph.in_degree(t.id)
                 for t in self.builder.tasks}
        by_id = {t.id: t for t in self.builder.tasks}
        ready = [t.id for t in self.builder.tasks if indeg[t.id] == 0]
        out: list[Task] = []
        while ready:
            ready.sort(key=lambda i: (-rank[i], i))
            tid = ready.pop(0)
            out.append(by_id[tid])
            for s in self.builder.graph.successors(tid):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        return out

    def simulate(self, order: str = "declaration") -> SimClock:
        """Replay the recorded execution onto simulated timelines.

        Tasks are replayed in ``order`` ("declaration" FIFO, or
        "critical-path" priority — tasks on the longest remaining path are
        booked first when several are ready, which can shorten the
        makespan on contended devices); each task's start waits for its
        dependencies' simulated completion and for its inserted transfers,
        which are themselves booked on direction-specific link timelines
        after their source datum is ready.
        """
        clock = SimClock()
        ready_of_task: dict[int, float] = {}
        ld_ready: dict[int, float] = {}
        for task in self._schedule_order(order):
            dep_ready = max((ready_of_task[p.id]
                             for p in self.builder.predecessors(task)),
                            default=0.0)
            xfer_ready = dep_ready
            for rec in self._transfers.get(task.id, ()):
                src_space = self._space(rec.src)
                dst_space = self._space(rec.dst)
                dur = transfer_seconds(rec.nbytes, src_space, dst_space)
                nb = max(dep_ready, ld_ready.get(rec.ld_id, 0.0))
                iv = clock.reserve(link_name(rec.src, rec.dst), dur,
                                   not_before=nb, label=f"xfer:{task.name}")
                xfer_ready = max(xfer_ready, iv.end)
            device = self.registry.get(task.device_name)
            dur = self._task_duration(task)
            iv = clock.reserve(device.name, dur + device.launch_overhead,
                               not_before=xfer_ready, label=task.name)
            task.sim_start, task.sim_end = iv.start, iv.end
            ready_of_task[task.id] = iv.end
            for acc in task.write_accesses():
                ld_ready[acc.data.id] = iv.end
        return clock

    def report(self, order: str = "declaration") -> ExecutionReport:
        """Simulate the recorded execution and package the outcome."""
        clock = self.simulate(order=order)
        return ExecutionReport(tasks=list(self.builder.tasks), clock=clock,
                               stats=self.stats, transfers=dict(self._transfers))
