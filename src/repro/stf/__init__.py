"""Asynchronous sequential-task-flow engine (the CUDASTF analogue).

Declare logical data and tasks with read/write access modes; the engine
infers the dependency DAG (RAW/WAR/WAW hazards), stages operands across
simulated devices, executes serially or on a thread pool, and reports the
simulated heterogeneous schedule (makespan, overlap, critical path).
"""

from .context import StfContext
from .graph import GraphBuilder
from .logical_data import Access, AccessMode, LogicalData
from .scheduler import ExecutionReport, Scheduler, TransferRecord
from .task import Task, TaskState
from .tracing import (ScheduleSummary, critical_path_seconds, gantt,
                      summarize, timeline_json, to_dot)

__all__ = [
    "StfContext", "GraphBuilder", "Access", "AccessMode", "LogicalData",
    "ExecutionReport", "Scheduler", "TransferRecord", "Task", "TaskState",
    "ScheduleSummary", "critical_path_seconds", "gantt", "summarize",
    "timeline_json", "to_dot",
]
