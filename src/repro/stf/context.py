"""User-facing STF context (the CUDASTF ``context`` analogue).

Typical use::

    ctx = StfContext()                     # default 1 CPU + 1 GPU node
    x = ctx.logical_data(array, "input")
    codes = ctx.logical_data_empty("codes")
    ctx.task("predict", predict_fn, [x.read(), codes.write()], device="gpu0",
             duration=lambda nbytes: nbytes / 1.0e12)
    report = ctx.run(mode="async")
    result = codes.get()

Tasks declare *what data they touch and how*; the context infers the DAG,
stages operands onto the right device (recording the transfers), executes —
serially or on a thread pool — and replays everything onto simulated
timelines so the schedule's overlap is measurable.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..errors import StfError
from ..runtime.device import DeviceRegistry, default_node
from ..runtime.memory import MemorySpace
from .graph import GraphBuilder
from .logical_data import Access, LogicalData
from .scheduler import ExecutionReport, Scheduler
from .task import DurationModel, Task, validate_accesses


class StfContext:
    """Builds and runs one sequential task flow."""

    def __init__(self, registry: DeviceRegistry | None = None,
                 host_device: str = "cpu0",
                 default_device: str = "gpu0") -> None:
        self.registry = registry if registry is not None else default_node()
        if host_device not in self.registry:
            raise StfError(f"host device {host_device!r} not in registry")
        self.host_space = MemorySpace(self.registry.get(host_device))
        self.default_device = default_device
        self.builder = GraphBuilder()
        self._finalized = False
        self._data: list[LogicalData] = []

    # -- data ----------------------------------------------------------- #
    def logical_data(self, array: np.ndarray, name: str | None = None
                     ) -> LogicalData:
        """Declare a datum with initial host contents."""
        self._check_open()
        ld = LogicalData(name or f"data{len(self._data)}", self.host_space,
                         initial=np.asarray(array))
        self._data.append(ld)
        return ld

    def logical_data_empty(self, name: str | None = None) -> LogicalData:
        """Declare a datum defined later by a task's write() access
        (CUDASTF's shape-only logical data; here even the shape is deferred,
        which is what variable-size encoder outputs need)."""
        self._check_open()
        ld = LogicalData(name or f"data{len(self._data)}", self.host_space)
        self._data.append(ld)
        return ld

    # -- tasks ----------------------------------------------------------- #
    def task(self, name: str, fn: Callable[..., Any],
             deps: Sequence[Access], device: str | None = None,
             duration: DurationModel = None) -> Task:
        """Declare a task; dependencies on earlier tasks are inferred."""
        self._check_open()
        device_name = device or self.default_device
        if device_name not in self.registry:
            raise StfError(f"unknown device {device_name!r}")
        t = Task(name=name, fn=fn, accesses=validate_accesses(deps),
                 device_name=device_name, duration=duration)
        self.builder.add_task(t)
        return t

    def parallel_tiles(self, name: str, fn: Callable[[np.ndarray], np.ndarray],
                       source: LogicalData, tiles: int,
                       device: str | None = None,
                       devices: Sequence[str] | None = None,
                       duration: DurationModel = None) -> LogicalData:
        """Map ``fn`` over ``tiles`` slices of ``source`` as concurrent tasks
        (the CUDASTF ``parallel_for`` idiom at tile granularity).

        ``source`` must be defined and is split along axis 0 into a
        scatter task, each tile is processed by its own task (these run
        concurrently on the thread-pool executor), and a gather task
        concatenates the results into the returned logical datum.  ``fn``
        must be shape-preserving along axis 0.  Pass ``devices`` to spread
        the tile tasks round-robin over several execution resources (the
        multi-device overlap shows up in the simulated schedule).
        """
        if tiles < 1:
            raise StfError("tiles must be >= 1")
        parts = [self.logical_data_empty(f"{name}/in{k}")
                 for k in range(tiles)]

        def scatter(arr: np.ndarray):
            return tuple(np.ascontiguousarray(p)
                         for p in np.array_split(arr, tiles, axis=0))

        self.task(f"{name}/scatter", scatter,
                  [source.read()] + [p.write() for p in parts],
                  device=device, duration=duration)

        outs = [self.logical_data_empty(f"{name}/out{k}")
                for k in range(tiles)]
        for k, (p, o) in enumerate(zip(parts, outs)):
            tile_device = devices[k % len(devices)] if devices else device
            self.task(f"{name}/tile{k}", lambda a, f=fn: (f(a),),
                      [p.read(), o.write()], device=tile_device,
                      duration=duration)

        result = self.logical_data_empty(f"{name}/result")

        def gather(*arrays):
            return (np.concatenate(arrays, axis=0),)

        self.task(f"{name}/gather", gather,
                  [o.read() for o in outs] + [result.write()],
                  device=device, duration=duration)
        return result

    # -- execution -------------------------------------------------------- #
    def run(self, mode: str = "serial", workers: int = 4,
            sim_order: str = "declaration", pool=None,
            max_in_flight: int | None = None) -> ExecutionReport:
        """Execute the flow and return the :class:`ExecutionReport`.

        ``mode`` is ``"serial"``, ``"async"`` or ``"pool"``; ``sim_order``
        selects the simulated-timeline replay policy ("declaration" or
        "critical-path").  ``"pool"`` mode executes on an externally owned
        ``pool`` (any :class:`concurrent.futures.Executor`) so several
        flows — e.g. one per shard — can overlap on shared workers, with
        ``max_in_flight`` bounding this flow's outstanding tasks.  The
        context is single-shot: it cannot be extended or re-run
        afterwards (matching CUDASTF's finalize semantics), but the
        returned scheduler state allows re-simulating under a different
        policy via :attr:`last_scheduler`.
        """
        self._check_open()
        self.builder.validate()
        self._finalized = True
        sched = Scheduler(self.registry, self.builder)
        self.last_scheduler = sched
        if mode == "serial":
            sched.run_serial()
        elif mode == "async":
            sched.run_async(workers=workers)
        elif mode == "pool":
            if pool is None:
                raise StfError("pool mode needs an executor (pass pool=...)")
            sched.run_pool(pool, max_in_flight=max_in_flight)
        else:
            raise StfError(f"unknown execution mode {mode!r}")
        return sched.report(order=sim_order)

    def _check_open(self) -> None:
        if self._finalized:
            raise StfError("context already finalized; create a new StfContext")
