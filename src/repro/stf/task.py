"""Task objects for the STF engine.

A :class:`Task` bundles a Python callable (the "kernel"), the device it
notionally runs on, its declared :class:`~repro.stf.logical_data.Access`
list, and a duration model for the simulated timeline.  The callable
receives one NumPy array per access, in declaration order; it may mutate
write/rw arrays in place, or return a tuple with one array per
write-mode access to (re)define those logical data — the latter is how
size-changing stages (encoders) produce outputs whose shape is unknown at
graph-construction time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Sequence

from ..errors import StfError
from .logical_data import Access

_task_ids = itertools.count()

#: A duration model: seconds, or a callable of the total operand bytes.
DurationModel = float | Callable[[int], float] | None


class TaskState(Enum):
    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Task:
    """One node of the sequential-task-flow graph."""

    name: str
    fn: Callable[..., Any]
    accesses: tuple[Access, ...]
    device_name: str
    duration: DurationModel = None
    id: int = field(default_factory=lambda: next(_task_ids))
    state: TaskState = TaskState.PENDING
    error: BaseException | None = None
    #: simulated schedule, filled by the scheduler
    sim_start: float = 0.0
    sim_end: float = 0.0
    #: measured wall-clock seconds of the kernel body
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.accesses:
            raise StfError(f"task {self.name!r} declares no data accesses")
        seen: set[int] = set()
        for acc in self.accesses:
            if acc.data.id in seen:
                raise StfError(f"task {self.name!r} accesses logical data "
                               f"{acc.data.name!r} more than once; use a "
                               "single rw() access instead")
            seen.add(acc.data.id)

    def write_accesses(self) -> list[Access]:
        """Accesses that (re)define data (write + rw)."""
        return [a for a in self.accesses if a.mode.writes]

    def read_accesses(self) -> list[Access]:
        """Accesses that consume data (read + rw)."""
        return [a for a in self.accesses if a.mode.reads]

    def modeled_seconds(self, operand_bytes: int) -> float | None:
        """Evaluate the duration model (None -> use measured wall time)."""
        if self.duration is None:
            return None
        if callable(self.duration):
            return float(self.duration(operand_bytes))
        return float(self.duration)


def validate_accesses(accesses: Sequence[Access]) -> tuple[Access, ...]:
    """Type-check a task's declared access list."""
    for acc in accesses:
        if not isinstance(acc, Access):
            raise StfError(f"expected Access (ld.read()/write()/rw()), got "
                           f"{type(acc).__name__}")
    return tuple(accesses)
