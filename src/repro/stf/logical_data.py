"""Logical data: the STF engine's unit of dependency tracking.

Mirroring CUDASTF, a :class:`LogicalData` names a piece of data independent
of where it currently lives.  The engine keeps per-space *instances*
(concrete buffers) and a validity set; tasks declare how they access a
logical datum (:class:`AccessMode`) and the engine infers dependencies,
inserts transfers, and invalidates stale instances on writes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..errors import StfError
from ..runtime.memory import Buffer, MemorySpace

_ld_ids = itertools.count()


class AccessMode(Enum):
    """How a task touches a logical datum (CUDASTF's ``read``/``write``/``rw``)."""

    READ = "read"
    WRITE = "write"
    RW = "rw"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.RW)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.RW)


@dataclass(frozen=True)
class Access:
    """One task operand: a logical datum plus an access mode."""

    data: "LogicalData"
    mode: AccessMode


class LogicalData:
    """A named, location-transparent datum.

    Parameters
    ----------
    name:
        human-readable label (shows up in traces).
    initial:
        optional initial host content.  A logical datum may also start
        *undefined* and be defined by the first task that writes it
        (CUDASTF's shape-only ``logical_data``).
    host_space:
        the space ``initial`` lives in / results are fetched to.
    """

    def __init__(self, name: str, host_space: MemorySpace,
                 initial: np.ndarray | None = None) -> None:
        self.id = next(_ld_ids)
        self.name = name
        self.host_space = host_space
        #: concrete instances per space name
        self.instances: dict[str, Buffer] = {}
        #: spaces whose instance holds the current value
        self.valid: set[str] = set()
        #: simulated time each valid instance became ready
        self.ready_at: dict[str, float] = {}
        self.defined = initial is not None
        if initial is not None:
            buf = Buffer(np.asarray(initial), host_space)
            self.instances[host_space.name] = buf
            self.valid.add(host_space.name)
            self.ready_at[host_space.name] = 0.0

    # -- access declarations (the user-facing dependency vocabulary) ------
    def read(self) -> Access:
        """Declare a read access to this datum."""
        return Access(self, AccessMode.READ)

    def write(self) -> Access:
        """Declare a define/replace access (the task returns the array)."""
        return Access(self, AccessMode.WRITE)

    def rw(self) -> Access:
        """Declare an in-place read-modify-write access."""
        return Access(self, AccessMode.RW)

    # -- instance management (used by the scheduler) -----------------------
    def valid_instance(self) -> tuple[str, Buffer]:
        """Any space holding the current value, plus its buffer."""
        if not self.valid:
            raise StfError(f"logical data {self.name!r} has no valid instance "
                           "(read before any write?)")
        space = next(iter(sorted(self.valid)))
        return space, self.instances[space]

    def set_instance(self, space: MemorySpace, buf: Buffer, ready: float,
                     *, exclusive: bool) -> None:
        """Install ``buf`` as the instance in ``space``.

        ``exclusive=True`` (a write) invalidates every other instance.
        """
        self.instances[space.name] = buf
        if exclusive:
            self.valid = {space.name}
            self.ready_at = {space.name: ready}
        else:
            self.valid.add(space.name)
            self.ready_at[space.name] = ready
        self.defined = True

    def get(self) -> np.ndarray:
        """Fetch the current value in host space (post-run convenience)."""
        if self.host_space.name in self.valid:
            return self.instances[self.host_space.name].array
        _, buf = self.valid_instance()
        return buf.array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalData({self.name!r}, valid={sorted(self.valid)})"
