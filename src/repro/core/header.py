"""Compressed-container format.

Layout::

    magic "FZMD" | u16 version | u32 header_len | u32 header_crc
    | header (JSON, UTF-8) | body

``header_crc`` covers the JSON header; the header itself records a CRC of
the stored body, so any single corrupted byte anywhere in a container is
detected before a codec runs (fuzz-tested).

The JSON header records the field geometry, the error bound actually
applied, the module names of every stage, scalar per-stage metadata, and a
section table (name, offset, length) describing the *decoded* body.  The
body is the concatenation of all binary sections, passed through the
secondary module (so the secondary stage compresses quant-code payloads,
outlier channels and anchors together, as zstd does in the paper).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import HeaderError

MAGIC = b"FZMD"
VERSION = 1

_PREFIX = struct.Struct("<4sHII")


@dataclass
class ContainerHeader:
    """Everything needed to reverse a pipeline, minus the binary payloads."""

    shape: tuple[int, ...]
    dtype: str
    eb_value: float
    eb_mode: str
    eb_abs: float
    radius: int
    modules: dict[str, str]          # stage -> module name
    stage_meta: dict[str, dict]      # stage -> scalar metadata
    sections: list[tuple[str, int, int]] = field(default_factory=list)
    #: CRC-32 of the stored body (0 = unchecked, for pre-integrity blobs)
    body_crc: int = 0
    #: canonical PipelineSpec (JSON form); None for baseline/meta containers
    #: and for blobs written before the spec was introduced
    pipeline: dict | None = None

    def to_json(self) -> dict:
        """JSON-serialisable form of the header."""
        obj = {
            "shape": list(self.shape),
            "dtype": self.dtype,
            "eb_value": self.eb_value,
            "eb_mode": self.eb_mode,
            "eb_abs": self.eb_abs,
            "radius": self.radius,
            "modules": self.modules,
            "stage_meta": self.stage_meta,
            "sections": [[n, o, l] for n, o, l in self.sections],
            "body_crc": self.body_crc,
        }
        if self.pipeline is not None:
            obj["pipeline"] = self.pipeline
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "ContainerHeader":
        try:
            return cls(
                shape=tuple(int(x) for x in obj["shape"]),
                dtype=str(obj["dtype"]),
                eb_value=float(obj["eb_value"]),
                eb_mode=str(obj["eb_mode"]),
                eb_abs=float(obj["eb_abs"]),
                radius=int(obj["radius"]),
                modules={str(k): str(v) for k, v in obj["modules"].items()},
                stage_meta={str(k): dict(v) for k, v in obj["stage_meta"].items()},
                sections=[(str(n), int(o), int(l)) for n, o, l in obj["sections"]],
                body_crc=int(obj.get("body_crc", 0)),
                pipeline=obj.get("pipeline"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HeaderError(f"malformed container header: {exc}") from exc

    def pipeline_spec(self):
        """The :class:`~repro.core.spec.PipelineSpec` stored in the header.

        ``None`` when the container predates the spec field or was written
        by a baseline compressor; older blobs still decode via the
        ``modules`` table.
        """
        if self.pipeline is None:
            return None
        from .spec import PipelineSpec
        return PipelineSpec.from_json(self.pipeline)

    @property
    def element_count(self) -> int:
        return int(np.prod(self.shape))

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)


def as_bytes_view(arr: np.ndarray) -> memoryview:
    """A zero-copy byte view of an array, suitable as a section payload.

    ``assemble`` joins section payloads with ``bytes.join``, which accepts
    any buffer — so packing an array as a view instead of ``tobytes()``
    skips one full-size copy per section.  The view keeps the (contiguous)
    array alive; non-contiguous inputs are copied once, as before.
    """
    return np.ascontiguousarray(arr).data.cast("B")


def assemble(header: ContainerHeader, sections: dict[str, bytes],
             stored_body: bytes | None = None) -> tuple[bytes, bytes]:
    """Build (header_bytes, body_bytes); fills the header's section table.

    When ``stored_body`` is given (the body after the secondary encoder),
    its CRC-32 is recorded so :func:`parse` can detect corruption before
    any codec touches the payload.
    """
    header.sections = []
    parts: list[bytes] = []
    offset = 0
    for name, payload in sections.items():
        header.sections.append((name, offset, len(payload)))
        parts.append(payload)
        offset += len(payload)
    body = b"".join(parts)
    if stored_body is not None:
        header.body_crc = zlib.crc32(stored_body) & 0xFFFFFFFF
    else:
        header.body_crc = zlib.crc32(body) & 0xFFFFFFFF
    hjson = json.dumps(header.to_json(), separators=(",", ":")).encode("utf-8")
    hcrc = zlib.crc32(hjson) & 0xFFFFFFFF
    return _PREFIX.pack(MAGIC, VERSION, len(hjson), hcrc) + hjson, body


def parse(blob: bytes) -> tuple[ContainerHeader, bytes]:
    """Split a container into (header, raw-body) — the body may still be
    secondary-encoded; use the header's secondary module to decode it."""
    if len(blob) < _PREFIX.size:
        raise HeaderError("container too short")
    magic, version, hlen, hcrc = _PREFIX.unpack_from(blob, 0)
    if magic != MAGIC:
        raise HeaderError(f"bad magic {magic!r}")
    if version != VERSION:
        raise HeaderError(f"unsupported container version {version}")
    start = _PREFIX.size
    if len(blob) < start + hlen:
        raise HeaderError("truncated container header")
    hjson = blob[start:start + hlen]
    if (zlib.crc32(hjson) & 0xFFFFFFFF) != hcrc:
        raise HeaderError("container header CRC mismatch; the blob is "
                          "corrupt or truncated")
    try:
        obj = json.loads(hjson.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HeaderError(f"unreadable container header: {exc}") from exc
    header = ContainerHeader.from_json(obj)
    stored = blob[start + hlen:]
    if header.body_crc:
        actual = zlib.crc32(stored) & 0xFFFFFFFF
        if actual != header.body_crc:
            raise HeaderError(
                f"container body CRC mismatch (stored {header.body_crc:#x}, "
                f"computed {actual:#x}); the blob is corrupt or truncated")
    return header, stored


def peek_header(blob: bytes) -> ContainerHeader:
    """Parse just the container header, skipping the body CRC.

    :func:`parse` checksums the whole stored body before returning — the
    right default, but wasted work for callers that only need the header
    to make a decision (engine dispatch, decode-plan resolution) and
    then hand the blob to a full ``parse``.  The header's own CRC is
    still verified, so a corrupt header never yields a bogus spec.
    """
    if len(blob) < _PREFIX.size:
        raise HeaderError("container too short")
    magic, version, hlen, hcrc = _PREFIX.unpack_from(blob, 0)
    if magic != MAGIC:
        raise HeaderError(f"bad magic {magic!r}")
    if version != VERSION:
        raise HeaderError(f"unsupported container version {version}")
    start = _PREFIX.size
    if len(blob) < start + hlen:
        raise HeaderError("truncated container header")
    hjson = blob[start:start + hlen]
    if (zlib.crc32(hjson) & 0xFFFFFFFF) != hcrc:
        raise HeaderError("container header CRC mismatch; the blob is "
                          "corrupt or truncated")
    try:
        obj = json.loads(hjson.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HeaderError(f"unreadable container header: {exc}") from exc
    return ContainerHeader.from_json(obj)


def split_sections(header: ContainerHeader, body: bytes, *,
                   zero_copy: bool = False) -> dict[str, bytes]:
    """Slice the decoded body back into named sections.

    ``zero_copy=True`` returns :class:`memoryview` slices into ``body``
    instead of ``bytes`` copies — one allocation saved per section on the
    decompression hot path.  Views behave like read-only bytes for every
    consumer here (``np.frombuffer``, ``struct.unpack_from``, indexing);
    callers that outlive ``body`` must copy explicitly.
    """
    out: dict[str, bytes] = {}
    view = memoryview(body) if zero_copy else body
    for name, offset, length in header.sections:
        if offset + length > len(body):
            raise HeaderError(f"section {name!r} exceeds body size")
        out[name] = view[offset:offset + length]
    return out
