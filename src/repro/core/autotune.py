"""Pipeline auto-selection (the paper's future-work item 3, implemented).

§5 of the paper proposes "an auto-selection mechanism for compression
modules based on data characteristics, intended hardware environment, and
needed quality metrics of the end user".  This module provides it:

1. a cheap, representative **sample** of the field is taken (strided
   blocks, preserving local structure so predictors behave as they would
   on the full field);
2. every candidate pipeline compresses the sample, giving a measured CR
   and PSNR;
3. the calibrated cost model prices each candidate on the *target
   platform* (which may not be the machine running the tuner);
4. candidates are scored by the user's objective — end-to-end
   ``speedup`` (Equation 1 on the platform's measured link bandwidth),
   ``ratio``, or ``quality`` (PSNR per bit) — and the winner is returned
   with the full scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..metrics.quality import psnr
from ..metrics.speedup import overall_speedup
from ..perf.estimator import RunStats, estimate_throughput
from ..perf.platform import H100, PlatformSpec
from ..types import EbMode, ErrorBound
from .pipeline import Pipeline, decompress
from .presets import fzmod_default, fzmod_quality, fzmod_speed

OBJECTIVES = ("speedup", "ratio", "quality")


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's sample measurements and objective score."""

    name: str
    cr: float
    psnr_db: float
    modeled_compress_gbps: float
    score: float


@dataclass
class TuneReport:
    """Scoreboard of an auto-tuning run."""

    objective: str
    platform: str
    eb: float
    scores: list[CandidateScore] = field(default_factory=list)

    @property
    def winner(self) -> CandidateScore:
        return max(self.scores, key=lambda s: s.score)

    def table(self) -> str:
        """Render the scoreboard as an aligned text table."""
        lines = [f"{'pipeline':<16} {'CR':>9} {'PSNR dB':>9} "
                 f"{'modelled GB/s':>14} {'score':>10}"]
        for s in sorted(self.scores, key=lambda s: -s.score):
            lines.append(f"{s.name:<16} {s.cr:>9.2f} {s.psnr_db:>9.2f} "
                         f"{s.modeled_compress_gbps:>14.1f} {s.score:>10.4f}")
        return "\n".join(lines)


def sample_blocks(data: np.ndarray, fraction: float = 0.05,
                  block: int = 4096, seed: int = 0) -> np.ndarray:
    """A structure-preserving sample: contiguous blocks at strided offsets.

    Contiguity matters — predictors exploit local correlation, so random
    scalar sampling would misestimate every candidate equally badly.  The
    sample keeps the original rank by slicing along the leading axis where
    possible.
    """
    if not (0.0 < fraction <= 1.0):
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    if data.ndim > 1:
        n0 = data.shape[0]
        take = max(1, int(round(n0 * fraction)))
        stride = max(1, n0 // take)
        return np.ascontiguousarray(data[::stride][:take])
    flat = data.reshape(-1)
    nblocks = max(1, int(flat.size * fraction) // block)
    stride = max(block, flat.size // max(nblocks, 1))
    pieces = [flat[s:s + block] for s in range(0, flat.size - block + 1, stride)]
    if not pieces:
        return flat.copy()
    return np.concatenate(pieces[:nblocks]) if nblocks > 1 else pieces[0].copy()


def default_candidates() -> list[Pipeline]:
    """The stock candidate set: the three presets plus default+zstd."""
    return [fzmod_default(), fzmod_speed(), fzmod_quality(),
            fzmod_default(secondary="zstd-like")]


def autotune(data: np.ndarray, eb: ErrorBound | float,
             objective: str = "speedup", platform: PlatformSpec = H100,
             candidates: list[Pipeline] | None = None,
             sample_fraction: float = 0.05
             ) -> tuple[Pipeline, TuneReport]:
    """Pick the best pipeline for ``data`` under ``objective``.

    Returns ``(winning_pipeline, report)``.  The winner is a fresh pipeline
    instance ready for the full field.
    """
    if objective not in OBJECTIVES:
        raise ConfigError(f"objective must be one of {OBJECTIVES}")
    if not isinstance(eb, ErrorBound):
        eb = ErrorBound(float(eb), EbMode.REL)
    if candidates is None:
        candidates = default_candidates()
    sample = sample_blocks(np.asarray(data), fraction=sample_fraction)

    report = TuneReport(objective=objective, platform=platform.name,
                        eb=eb.value)
    by_name: dict[str, Pipeline] = {}
    for pipe in candidates:
        key = pipe.name if pipe.name not in by_name else \
            f"{pipe.name}+{pipe.secondary.name}"
        by_name[key] = pipe
        cf = pipe.compress(sample, eb)
        recon = decompress(cf.blob)
        q = psnr(sample, recon)
        stats = RunStats(input_bytes=sample.nbytes, cr=cf.stats.cr,
                         code_fraction=cf.stats.code_fraction,
                         outlier_fraction=cf.stats.outlier_fraction,
                         interp_levels=max(1, cf.stats.interp_levels))
        model_name = pipe.name if pipe.name.startswith("fzmod") \
            else "fzmod-default"
        th = estimate_throughput(model_name, stats, platform)
        if objective == "speedup":
            score = overall_speedup(cf.stats.cr, th.compress_bps,
                                    platform.measured_link_bw)
        elif objective == "ratio":
            score = cf.stats.cr
        else:  # quality: fidelity per stored bit
            bitrate = cf.stats.bit_rate
            score = (q / bitrate) if np.isfinite(q) else 1e9
        report.scores.append(CandidateScore(
            name=key, cr=cf.stats.cr, psnr_db=float(q),
            modeled_compress_gbps=th.compress_gbps, score=float(score)))
    winner = report.winner
    return by_name[winner.name], report
