"""Core framework: modules, registry, pipelines, presets, container format."""

from .archive import Archive, ArchiveEntry, ArchiveWriter
from .builder import PipelineBuilder
from .chunked import TiledField, compress_tiled
from .header import ContainerHeader, parse
from .progressive import ProgressiveField, compress_progressive
from .target import TargetResult, compress_to_target
from .streamio import StreamingCompressor, StreamingDecompressor
from .temporal import TemporalCompressor, TemporalDecompressor
from .verify import VerificationReport, verify_pipeline
from .module import (EncodedStream, EncoderModule, Module, PredictorArtifacts,
                     PredictorModule, PreprocessModule, PreprocessResult,
                     SecondaryModule, StatisticsModule)
from .pipeline import (DEFAULT_RADIUS, CompressedField, CompressionStats,
                       Pipeline, decompress)
from .presets import (PRESET_NAMES, PRESET_SPECS, fzmod_default,
                      fzmod_quality, fzmod_speed, get_preset, get_preset_spec)
from .registry import (DEFAULT_REGISTRY, ModuleRegistry, get_module, register,
                       unregister)
from .spec import PipelineSpec

__all__ = [
    "Archive", "ArchiveEntry", "ArchiveWriter", "TargetResult",
    "compress_to_target", "TiledField", "compress_tiled",
    "TemporalCompressor", "TemporalDecompressor",
    "ProgressiveField", "compress_progressive",
    "VerificationReport", "verify_pipeline",
    "StreamingCompressor", "StreamingDecompressor",
    "PipelineBuilder", "ContainerHeader", "parse", "EncodedStream",
    "EncoderModule", "Module", "PredictorArtifacts", "PredictorModule",
    "PreprocessModule", "PreprocessResult", "SecondaryModule",
    "StatisticsModule", "DEFAULT_RADIUS", "CompressedField",
    "CompressionStats", "Pipeline", "PipelineSpec", "decompress",
    "PRESET_NAMES", "PRESET_SPECS", "fzmod_default", "fzmod_quality",
    "fzmod_speed", "get_preset", "get_preset_spec",
    "DEFAULT_REGISTRY", "ModuleRegistry", "get_module", "register",
    "unregister",
]
