"""Container inspection (no decompression).

``describe(blob)`` classifies any bytes this library produces — pipeline
or baseline containers, archives, tiled fields, temporal streams,
progressive containers, streamed files — and returns a structured
description; ``render(blob)`` pretty-prints it.  Backs ``fzmod inspect``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HeaderError
from .archive import ARCHIVE_MAGIC, Archive
from .header import MAGIC as CONTAINER_MAGIC
from .header import parse
from .streamio import STREAM_MAGIC


@dataclass
class Description:
    """What a blob is and what's inside."""

    kind: str                      # container | archive | stream
    detail: dict = field(default_factory=dict)
    members: list[dict] = field(default_factory=list)


def _describe_container(blob: bytes) -> Description:
    header, stored = parse(blob)
    return Description(
        kind="container",
        detail={
            "shape": list(header.shape),
            "dtype": header.dtype,
            "eb": f"{header.eb_value:g} ({header.eb_mode})",
            "eb_abs": header.eb_abs,
            "radius": header.radius,
            "modules": dict(header.modules),
            "stored_body_bytes": len(stored),
            "sections": [{"name": n, "bytes": l}
                         for n, _, l in header.sections],
        })


def _describe_archive(blob: bytes) -> Description:
    ar = Archive(blob)
    names = ar.names()
    kind = "archive"
    if any(n.startswith("tile_") for n in names):
        kind = "tiled-field archive"
    elif any(n.startswith("frame_") for n in names):
        kind = "temporal-stream archive"
    elif any(n.startswith("level_") for n in names):
        kind = "progressive archive"
    stats = ar.total_stats()
    d = Description(kind=kind,
                    detail={"fields": int(stats["fields"]),
                            "uncompressed_bytes": int(stats["uncompressed_bytes"]),
                            "compressed_bytes": int(stats["compressed_bytes"]),
                            "cr": round(stats["cr"], 3)})
    for name in names:
        e = ar.entry(name)
        d.members.append({"name": name, "shape": list(e.shape),
                          "bytes": e.length, "cr": round(e.cr, 2),
                          "pipeline": e.pipeline})
    return d


def _describe_sharded(blob: bytes) -> Description:
    from ..parallel.executor import describe_sharded
    info = describe_sharded(blob)
    shards = info.pop("shards")
    d = Description(kind="multi-shard container", detail=info)
    for k, s in enumerate(shards):
        a, b = s["rows"]
        d.members.append({"name": f"shard{k}",
                          "shape": [b - a, *info["shape"][1:]],
                          "bytes": s["bytes"], "cr": "-",
                          "pipeline": info["pipeline"].get("name", "?")})
    return d


def describe(blob: bytes) -> Description:
    """Classify and describe ``blob``; raises HeaderError for foreign data."""
    if len(blob) < 4:
        raise HeaderError("blob too short to classify")
    magic = blob[:4]
    if magic == CONTAINER_MAGIC:
        return _describe_container(blob)
    if magic == ARCHIVE_MAGIC:
        return _describe_archive(blob)
    from ..parallel.executor import SHARD_MAGIC
    if magic == SHARD_MAGIC:
        return _describe_sharded(blob)
    if magic == STREAM_MAGIC:
        import io

        from .streamio import StreamingDecompressor
        sd = StreamingDecompressor(io.BytesIO(blob))
        return Description(
            kind="stream",
            detail={"slabs": sd.slab_count, "rows": sd.total_rows,
                    "tail_shape": list(sd.tail_shape),
                    "dtype": str(sd.dtype), "eb_abs": sd.eb_abs})
    raise HeaderError(f"unrecognised magic {magic!r}")


def hotpath_stats() -> dict:
    """Live counters of every hot-path amortisation layer in the process.

    Returns a JSON-ready dict with one entry per plan cache (hits, misses,
    evictions, occupancy — see :mod:`repro.kernels.plancache`), the
    runtime buffer pool's reuse counters, and the global allocator's
    live/peak bytes per memory space.  The perf-regression harness embeds
    this in ``BENCH_pipeline.json``; it is also the programmatic answer to
    "is the warm path actually warm?".

    This is a *view*: the counters themselves live in the unified
    telemetry registry (:data:`repro.obs.GLOBAL_METRICS`), which the
    Prometheus exporter scrapes directly.  Keys here are kept stable for
    existing consumers of the bench report.
    """
    from ..kernels.plancache import cache_stats
    from ..obs.metrics import GLOBAL_METRICS
    from ..obs.spans import GLOBAL_TRACER, telemetry_enabled
    from ..runtime.memory import GLOBAL_ALLOCATOR, GLOBAL_POOL, pooling_enabled
    return {
        "plan_caches": cache_stats(),
        "buffer_pool": {"enabled": pooling_enabled(), **GLOBAL_POOL.stats()},
        "allocator": {"live": dict(GLOBAL_ALLOCATOR.live),
                      "peak": dict(GLOBAL_ALLOCATOR.peak)},
        "telemetry": {"enabled": telemetry_enabled(),
                      "spans_emitted": GLOBAL_TRACER.emitted,
                      "spans_in_ring": len(GLOBAL_TRACER.records()),
                      "spans_dropped": GLOBAL_TRACER.dropped},
        "sanitizer": {
            key: int(GLOBAL_METRICS.value(f"sanitizer.{key}") or 0)
            for key in ("use_after_release", "double_release",
                        "aliasing", "poisoned")
        },
    }


def render_hotpath() -> str:
    """Human-readable ``hotpath_stats()`` report (backs ``fzmod stats``)."""
    s = hotpath_stats()
    lines = ["plan caches:"]
    for name, cs in s["plan_caches"].items():
        lines.append(f"  {name:<24} {cs['entries']:>4} entries "
                     f"{cs['bytes']:>10} B  hit rate {cs['hit_rate']:.2%} "
                     f"({cs['hits']} hits / {cs['misses']} misses, "
                     f"{cs['evictions']} evicted)")
        # caches holding plans for several directions (compress vs
        # decode) report each group on its own sub-line
        for grp, g in cs.get("by_group", {}).items():
            lines.append(f"    {grp:<22} {g['entries']:>4} entries "
                         f"             ({g['hits']} hits / "
                         f"{g['misses']} misses, "
                         f"{g['evictions']} evicted)")
    bp = s["buffer_pool"]
    state = "on" if bp["enabled"] else "off"
    lines.append(f"buffer pool ({state}): {bp['pooled_arrays']} idle arrays, "
                 f"{bp['pooled_bytes']} B pooled, reuse rate "
                 f"{bp['reuse_rate']:.2%} ({bp['hits']} hits / "
                 f"{bp['misses']} misses, {bp['drops']} drops)")
    alloc = s["allocator"]
    for space in sorted(alloc["peak"]):
        lines.append(f"allocator[{space}]: live {alloc['live'].get(space, 0)} B, "
                     f"peak {alloc['peak'][space]} B")
    tel = s["telemetry"]
    lines.append(f"telemetry ({'on' if tel['enabled'] else 'off'}): "
                 f"{tel['spans_emitted']} spans emitted, "
                 f"{tel['spans_in_ring']} in ring, "
                 f"{tel['spans_dropped']} dropped")
    san = s["sanitizer"]
    total = sum(san.values())
    state = "clean" if total == 0 else f"{total} finding(s)"
    lines.append(f"sanitizer ({state}): " + ", ".join(
        f"{k}={v}" for k, v in san.items()))
    return "\n".join(lines)


def render(blob: bytes) -> str:
    """Human-readable inspection report."""
    d = describe(blob)
    lines = [f"kind: {d.kind}"]
    for key, value in d.detail.items():
        if key == "sections":
            lines.append("sections:")
            for s in value:
                lines.append(f"  {s['name']:<16} {s['bytes']:>10} B")
        elif key == "modules":
            lines.append("modules: " + ", ".join(
                f"{k}={v}" for k, v in value.items()))
        else:
            lines.append(f"{key}: {value}")
    if d.members:
        lines.append("members:")
        for m in d.members:
            dims = "x".join(str(x) for x in m["shape"])
            lines.append(f"  {m['name']:<16} {dims:<16} {m['bytes']:>10} B "
                         f"CR {m['cr']:>8} via {m['pipeline']}")
    return "\n".join(lines)
