"""Temporal (snapshot-sequence) compression.

Simulation campaigns write *sequences* of snapshots whose consecutive
frames are highly correlated (HACC's "hundred-snapshot simulation" in the
paper's introduction).  This module adds time-dimension prediction on top
of any spatial pipeline:

* the first frame is compressed directly (an I-frame);
* each later frame is predicted by the *previous reconstruction* and only
  the residual is compressed (a D-frame), with an **absolute** bound equal
  to the sequence bound — so every frame individually meets the user's
  bound and, because prediction uses reconstructions (closed loop), error
  never accumulates across frames.

Decoding is sequential by construction (frame k needs frame k-1), but any
prefix can be decoded without the rest, and the stream is just an
:class:`~repro.core.archive.Archive` with ordered members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, HeaderError
from ..types import EbMode, ErrorBound, check_field
from .archive import Archive, ArchiveWriter
from .pipeline import Pipeline


def _frame_name(k: int) -> str:
    return f"frame_{k:06d}"


@dataclass
class TemporalStats:
    """Per-frame accounting of a temporal stream."""

    frames: int
    input_bytes: int
    output_bytes: int
    frame_crs: list[float]

    @property
    def cr(self) -> float:
        return self.input_bytes / self.output_bytes if self.output_bytes else 0.0


class TemporalCompressor:
    """Closed-loop snapshot-sequence compressor.

    Parameters
    ----------
    pipeline:
        the spatial pipeline for both I- and D-frames.
    eb:
        the per-frame bound.  REL bounds are resolved against the *first*
        frame's range and then frozen (sequence-consistent semantics: the
        guarantee must not drift as later frames change range).
    """

    def __init__(self, pipeline: Pipeline, eb: ErrorBound | float,
                 mode: EbMode | str = EbMode.REL) -> None:
        self.pipeline = pipeline
        if not isinstance(eb, ErrorBound):
            eb = ErrorBound(float(eb), EbMode(mode))
        self._eb_user = eb
        self._eb_abs: float | None = None
        self._prev_recon: np.ndarray | None = None
        self._writer = ArchiveWriter()
        self._count = 0
        self._in_bytes = 0
        self._frame_crs: list[float] = []

    @property
    def frame_count(self) -> int:
        return self._count

    def add_frame(self, data: np.ndarray) -> float:
        """Compress one snapshot; returns the frame's CR."""
        data = check_field(data)
        if self._prev_recon is not None and data.shape != self._prev_recon.shape:
            raise ConfigError("all frames must share one shape")
        if self._eb_abs is None:
            self._eb_abs = self._eb_user.absolute(float(data.min()),
                                                  float(data.max()))
        eb = ErrorBound(self._eb_abs, EbMode.ABS)
        if self._prev_recon is None:
            cf = self.pipeline.compress(data, eb)
            from .pipeline import decompress
            recon = decompress(cf.blob)
        else:
            residual = (data.astype(np.float64)
                        - self._prev_recon.astype(np.float64)).astype(data.dtype)
            cf = self.pipeline.compress(residual, eb)
            from .pipeline import decompress
            res_recon = decompress(cf.blob)
            recon = (self._prev_recon.astype(np.float64)
                     + res_recon.astype(np.float64)).astype(data.dtype)
        self._writer.add_compressed(_frame_name(self._count), cf,
                                    pipeline_name=self.pipeline.name)
        self._prev_recon = recon
        self._in_bytes += data.nbytes
        self._frame_crs.append(cf.stats.cr)
        self._count += 1
        return cf.stats.cr

    def finish(self) -> tuple[bytes, TemporalStats]:
        """Serialise the stream and return (bytes, stats)."""
        if self._count == 0:
            raise ConfigError("no frames added")
        blob = self._writer.to_bytes()
        return blob, TemporalStats(frames=self._count,
                                   input_bytes=self._in_bytes,
                                   output_bytes=len(blob),
                                   frame_crs=list(self._frame_crs))


class TemporalDecompressor:
    """Sequential decoder for a temporal stream (any prefix works)."""

    def __init__(self, blob: bytes) -> None:
        self.archive = Archive(blob)
        names = sorted(n for n in self.archive.names()
                       if n.startswith("frame_"))
        if not names:
            raise HeaderError("not a temporal stream (no frame members)")
        self._names = names
        self._prev: np.ndarray | None = None
        self._next = 0

    @property
    def frame_count(self) -> int:
        return len(self._names)

    def read_next(self) -> np.ndarray:
        """Decode and return the next frame."""
        if self._next >= len(self._names):
            raise ConfigError("temporal stream exhausted")
        frame = self.archive.read(self._names[self._next])
        if self._prev is not None:
            frame = (self._prev.astype(np.float64)
                     + frame.astype(np.float64)).astype(frame.dtype)
        self._prev = frame
        self._next += 1
        return frame

    def read_all(self) -> list[np.ndarray]:
        """Decode every remaining frame in order."""
        return [self.read_next() for _ in range(self.frame_count - self._next)]
