"""STF-backed FZMod-Default pipeline (the experimental §3.3.1 constructor).

Instead of calling modules sequentially, the pipeline is *declared* as
tasks over logical data and handed to the STF engine, which infers the
dependency DAG, inserts host<->device transfers, and exposes the
branch-level concurrency the paper highlights:

* **compression** — the histogram+Huffman branch and the outlier-packing
  branch are independent after prediction, so they run concurrently (GPU
  histogram + CPU packing);
* **decompression** — CPU Huffman decode of the quant codes overlaps with
  GPU outlier unpacking/scatter preparation, exactly the example of
  §3.3.1.

Task durations on the simulated timeline come from the same calibrated
cost model that regenerates the paper's figures, so the reported makespan
is "what an H100 node would see", while the data itself is produced by the
real kernels (results are bit-identical to the serial pipeline).
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError
from ..kernels import histogram as khist
from ..kernels import huffman, lorenzo, quantize
from ..perf.costmodel import CALIBRATION, cpu_rate
from ..perf.platform import H100, PlatformSpec
from ..runtime.device import DeviceRegistry, default_node
from ..stf import ExecutionReport, StfContext
from ..types import EbMode, ErrorBound, check_field
from .header import ContainerHeader, assemble, parse, split_sections
from .pipeline import DEFAULT_RADIUS, CompressedField, CompressionStats


def _registry_for(platform: PlatformSpec) -> DeviceRegistry:
    return default_node(gpu_mem_bw=platform.gpu_mem_bw,
                        gpu_link_bw=platform.measured_link_bw,
                        cpu_mem_bw=platform.cpu_mem_bw,
                        gpu_launch=platform.gpu_launch_overhead)


def _gpu_seconds(platform: PlatformSpec, traffic_bytes: float,
                 eff: float) -> float:
    return traffic_bytes / (platform.gpu_mem_bw * eff * platform.gpu_eff_scale)


class StfDefaultPipeline:
    """FZMod-Default expressed as a sequential task flow."""

    name = "fzmod-default-stf"

    def __init__(self, platform: PlatformSpec = H100,
                 radius: int = DEFAULT_RADIUS, mode: str = "async") -> None:
        self.platform = platform
        self.radius = radius
        self.mode = mode
        self.last_report: ExecutionReport | None = None

    # ------------------------------------------------------------------ #
    def compress(self, data: np.ndarray, eb: ErrorBound | float,
                 mode: EbMode | str = EbMode.REL) -> CompressedField:
        """Compress ``data`` by declaring the pipeline as an STF task graph."""
        if not isinstance(eb, ErrorBound):
            eb = ErrorBound(float(eb), EbMode(mode))
        data = check_field(data)
        eb_abs = eb.absolute(float(data.min()), float(data.max()))
        cal = CALIBRATION
        plat = self.platform
        nbytes = data.nbytes

        ctx = StfContext(registry=_registry_for(plat))
        ld_data = ctx.logical_data(data, "field")
        ld_codes = ctx.logical_data_empty("codes")
        ld_oidx = ctx.logical_data_empty("outlier-idx")
        ld_oval = ctx.logical_data_empty("outlier-val")
        ld_hist = ctx.logical_data_empty("histogram")
        ld_payload = ctx.logical_data_empty("huffman-payload")
        ld_book = ctx.logical_data_empty("codebook-lengths")
        ld_chunks = ctx.logical_data_empty("chunk-table")
        ld_packed = ctx.logical_data_empty("packed-outliers")

        radius = self.radius

        def t_predict(field: np.ndarray):
            res = lorenzo.compress(field, eb_abs, radius)
            return (res.codes.reshape(-1), res.outliers.indices,
                    res.outliers.values)

        ctx.task("lorenzo-quantize", t_predict,
                 [ld_data.read(), ld_codes.write(), ld_oidx.write(),
                  ld_oval.write()], device="gpu0",
                 duration=_gpu_seconds(plat, 1.5 * nbytes, cal.gpu_eff_kernel))

        def t_hist(codes: np.ndarray):
            return (khist.histogram(codes, 2 * radius).counts,)

        ctx.task("histogram", t_hist, [ld_codes.read(), ld_hist.write()],
                 device="gpu0",
                 duration=_gpu_seconds(plat, 0.5 * nbytes,
                                       cal.gpu_eff_irregular))

        def t_huffman(codes: np.ndarray, counts: np.ndarray):
            book = huffman.build_codebook(counts)
            enc = huffman.encode(codes, book)
            chunk_table = np.concatenate([enc.chunk_symbols, enc.chunk_bits])
            return (np.frombuffer(enc.payload, dtype=np.uint8),
                    enc.lengths, chunk_table)

        huff_rate = cpu_rate(cal.cpu_huffman_encode_per_core, plat, cal)
        ctx.task("huffman-encode", t_huffman,
                 [ld_codes.read(), ld_hist.read(), ld_payload.write(),
                  ld_book.write(), ld_chunks.write()], device="cpu0",
                 duration=0.5 * nbytes / huff_rate)

        def t_pack(oidx: np.ndarray, oval: np.ndarray):
            idx, val, count = quantize.pack_outliers(
                quantize.OutlierSet(indices=oidx, values=oval))
            framed = (np.asarray([count, len(idx), len(val)], dtype=np.int64)
                      .tobytes() + idx + val)
            return (np.frombuffer(framed, dtype=np.uint8),)

        ctx.task("pack-outliers", t_pack,
                 [ld_oidx.read(), ld_oval.read(), ld_packed.write()],
                 device="cpu0", duration=1e-4)

        report = ctx.run(mode=self.mode)
        self.last_report = report

        payload = ld_payload.get().tobytes()
        lengths = ld_book.get()
        chunk_table = ld_chunks.get()
        nchunks = chunk_table.size // 2
        packed = ld_packed.get().tobytes()
        ocount, ilen, vlen = np.frombuffer(packed[:24], dtype=np.int64)
        sections = {
            "enc.payload": payload,
            "enc.lengths": np.asarray(lengths, dtype=np.uint8).tobytes(),
            "enc.chunk_syms": chunk_table[:nchunks].astype(np.int64).tobytes(),
            "enc.chunk_bits": chunk_table[nchunks:].astype(np.int64).tobytes(),
        }
        if ocount:
            sections["outlier.idx"] = packed[24:24 + ilen]
            sections["outlier.val"] = packed[24 + ilen:24 + ilen + vlen]
        codes = ld_codes.get()
        header = ContainerHeader(
            shape=data.shape, dtype=data.dtype.str, eb_value=eb.value,
            eb_mode=eb.mode.value, eb_abs=eb_abs, radius=radius,
            modules={"preprocess": "rel-eb", "predictor": "lorenzo",
                     "statistics": "histogram", "encoder": "huffman",
                     "secondary": "none"},
            stage_meta={"predictor": {}, "preprocess": {},
                        "encoder": {"count": int(codes.size),
                                    "max_len": huffman.DEFAULT_MAX_LEN,
                                    "nchunks": int(nchunks)},
                        "outliers": {"count": int(ocount)}})
        header_bytes, body = assemble(header, sections)
        blob = header_bytes + body
        stats = CompressionStats(
            input_bytes=data.nbytes, output_bytes=len(blob),
            element_count=data.size, eb_abs=eb_abs,
            code_fraction=codes.nbytes / data.nbytes,
            outlier_fraction=(len(packed) - 24) / data.nbytes,
            outlier_count=int(ocount),
            section_sizes={k: len(v) for k, v in sections.items()},
            stage_seconds={"stf-makespan": report.makespan})
        return CompressedField(blob=blob, stats=stats, header=header)

    # ------------------------------------------------------------------ #
    def decompress(self, blob: bytes | CompressedField) -> np.ndarray:
        """STF decompression with the §3.3.1 overlap: Huffman decode (CPU)
        runs concurrently with outlier unpacking (GPU)."""
        if isinstance(blob, CompressedField):
            blob = blob.blob
        header, body = parse(blob)
        if header.modules.get("encoder") != "huffman" \
                or header.modules.get("predictor") != "lorenzo":
            raise PipelineError("StfDefaultPipeline decodes only "
                                "lorenzo+huffman containers")
        sections = split_sections(header, body)
        cal = CALIBRATION
        plat = self.platform
        nbytes = header.element_count * header.np_dtype.itemsize
        enc_meta = header.stage_meta["encoder"]
        nchunks = int(enc_meta["nchunks"])
        enc = huffman.HuffmanEncoded(
            payload=sections["enc.payload"],
            chunk_symbols=np.frombuffer(sections["enc.chunk_syms"],
                                        dtype=np.int64, count=nchunks),
            chunk_bits=np.frombuffer(sections["enc.chunk_bits"],
                                     dtype=np.int64, count=nchunks),
            count=int(enc_meta["count"]),
            lengths=np.frombuffer(sections["enc.lengths"], dtype=np.uint8),
            max_len=int(enc_meta["max_len"]))
        ocount = int(header.stage_meta.get("outliers", {}).get("count", 0))

        ctx = StfContext(registry=_registry_for(plat))
        ld_payload = ctx.logical_data(
            np.frombuffer(enc.payload, dtype=np.uint8), "payload")
        ld_oidx_raw = ctx.logical_data(
            np.frombuffer(sections.get("outlier.idx", b"\0"), dtype=np.uint8),
            "outlier-idx-packed")
        ld_oval_raw = ctx.logical_data(
            np.frombuffer(sections.get("outlier.val", b"\0"), dtype=np.uint8),
            "outlier-val-packed")
        ld_codes = ctx.logical_data_empty("codes")
        ld_oidx = ctx.logical_data_empty("outlier-idx")
        ld_oval = ctx.logical_data_empty("outlier-val")
        ld_out = ctx.logical_data_empty("reconstruction")

        def t_decode(_payload: np.ndarray):
            return (huffman.decode(enc),)

        huff_rate = cpu_rate(cal.cpu_huffman_decode_per_core, plat, cal)
        ctx.task("huffman-decode", t_decode,
                 [ld_payload.read(), ld_codes.write()], device="cpu0",
                 duration=0.5 * nbytes / huff_rate)

        def t_unpack(idx_raw: np.ndarray, val_raw: np.ndarray):
            out = quantize.unpack_outliers(idx_raw.tobytes(),
                                           val_raw.tobytes(), ocount)
            return (out.indices, out.values)

        ctx.task("unpack-outliers", t_unpack,
                 [ld_oidx_raw.read(), ld_oval_raw.read(), ld_oidx.write(),
                  ld_oval.write()], device="gpu0",
                 duration=_gpu_seconds(plat, max(1, ocount) * 16,
                                       cal.gpu_eff_irregular))

        def t_reconstruct(codes: np.ndarray, oidx: np.ndarray,
                          oval: np.ndarray):
            outliers = quantize.OutlierSet(indices=oidx.astype(np.int64),
                                           values=oval.astype(np.int64))
            recon = lorenzo.decompress_parts(
                codes=codes.reshape(header.shape), outliers=outliers,
                radius=header.radius, eb_abs=header.eb_abs,
                shape=header.shape, dtype=header.np_dtype)
            return (recon,)

        ctx.task("scatter+inverse-lorenzo", t_reconstruct,
                 [ld_codes.read(), ld_oidx.read(), ld_oval.read(),
                  ld_out.write()], device="gpu0",
                 duration=_gpu_seconds(plat, 1.5 * nbytes,
                                       cal.gpu_eff_kernel))

        report = ctx.run(mode=self.mode)
        self.last_report = report
        return ld_out.get()


class StfAdaptivePipeline:
    """Runtime module selection via speculative branch concurrency.

    §3.3.1 names "dynamic module selection based on observed runtime
    compression results" as a task-level-concurrency use case.  This
    pipeline realises it: after prediction, *both* encoder branches run
    concurrently — the FZ-GPU-style bitshuffle encoder on the GPU and the
    histogram+Huffman branch on the CPU — and a final selection task keeps
    whichever produced fewer bytes.  On a heterogeneous node the slower
    branch hides behind the faster one, so trying both costs roughly the
    max, not the sum (the report's overlap numbers show exactly that).

    Decompression needs nothing special: the winning branch's container is
    a standard pipeline container.
    """

    name = "fzmod-adaptive-stf"

    def __init__(self, platform: PlatformSpec = H100,
                 radius: int = DEFAULT_RADIUS, mode: str = "async") -> None:
        self.platform = platform
        self.radius = radius
        self.mode = mode
        self.last_report: ExecutionReport | None = None
        self.last_choice: str | None = None

    def compress(self, data: np.ndarray, eb: ErrorBound | float,
                 mode: EbMode | str = EbMode.REL) -> CompressedField:
        """Compress ``data`` by declaring the pipeline as an STF task graph."""
        from .modules_std import BitshuffleEncoder, HuffmanEncoder
        if not isinstance(eb, ErrorBound):
            eb = ErrorBound(float(eb), EbMode(mode))
        data = check_field(data)
        eb_abs = eb.absolute(float(data.min()), float(data.max()))
        cal = CALIBRATION
        plat = self.platform
        nbytes = data.nbytes
        radius = self.radius

        ctx = StfContext(registry=_registry_for(plat))
        ld_data = ctx.logical_data(data, "field")
        ld_codes = ctx.logical_data_empty("codes")
        ld_oidx = ctx.logical_data_empty("outlier-idx")
        ld_oval = ctx.logical_data_empty("outlier-val")
        ld_hist = ctx.logical_data_empty("histogram")
        results: dict[str, object] = {}

        def t_predict(field: np.ndarray):
            res = lorenzo.compress(field, eb_abs, radius)
            return (res.codes.reshape(-1), res.outliers.indices,
                    res.outliers.values)

        ctx.task("lorenzo-quantize", t_predict,
                 [ld_data.read(), ld_codes.write(), ld_oidx.write(),
                  ld_oval.write()], device="gpu0",
                 duration=_gpu_seconds(plat, 1.5 * nbytes,
                                       cal.gpu_eff_kernel))

        # branch A: bitshuffle encoder on the GPU
        ld_bs = ctx.logical_data_empty("bitshuffle-size")

        def t_bitshuffle(codes: np.ndarray):
            stream = BitshuffleEncoder().encode(codes, 2 * radius, None)
            results["bitshuffle"] = stream
            return (np.asarray([stream.nbytes()], dtype=np.int64),)

        ctx.task("enc-bitshuffle", t_bitshuffle,
                 [ld_codes.read(), ld_bs.write()], device="gpu0",
                 duration=_gpu_seconds(plat, 2.0 * 0.5 * nbytes,
                                       cal.gpu_eff_kernel))

        # branch B: histogram (GPU) + Huffman (CPU)
        ld_hu = ctx.logical_data_empty("huffman-size")

        def t_hist(codes: np.ndarray):
            return (khist.histogram(codes, 2 * radius).counts,)

        ctx.task("histogram", t_hist, [ld_codes.read(), ld_hist.write()],
                 device="gpu0",
                 duration=_gpu_seconds(plat, 0.5 * nbytes,
                                       cal.gpu_eff_irregular))

        def t_huffman(codes: np.ndarray, counts: np.ndarray):
            hist = khist.HistogramResult(counts=counts.astype(np.int64),
                                         num_bins=2 * radius)
            stream = HuffmanEncoder().encode(codes, 2 * radius, hist)
            results["huffman"] = stream
            return (np.asarray([stream.nbytes()], dtype=np.int64),)

        huff_rate = cpu_rate(cal.cpu_huffman_encode_per_core, plat, cal)
        ctx.task("enc-huffman", t_huffman,
                 [ld_codes.read(), ld_hist.read(), ld_hu.write()],
                 device="cpu0", duration=0.5 * nbytes / huff_rate)

        # runtime selection on the observed sizes
        ld_choice = ctx.logical_data_empty("choice")

        def t_select(bs_size: np.ndarray, hu_size: np.ndarray):
            return (np.asarray([0 if int(bs_size[0]) < int(hu_size[0]) else 1],
                               dtype=np.int64),)

        ctx.task("select-encoder", t_select,
                 [ld_bs.read(), ld_hu.read(), ld_choice.write()],
                 device="cpu0", duration=1e-6)

        report = ctx.run(mode=self.mode)
        self.last_report = report

        won = "bitshuffle" if int(ld_choice.get()[0]) == 0 else "huffman"
        self.last_choice = won
        stream = results[won]

        sections: dict[str, bytes] = dict(stream.sections)
        outliers = quantize.OutlierSet(
            indices=ld_oidx.get().astype(np.int64),
            values=ld_oval.get().astype(np.int64))
        idx, val, ocount = quantize.pack_outliers(outliers)
        if ocount:
            sections["outlier.idx"] = idx
            sections["outlier.val"] = val
        header = ContainerHeader(
            shape=data.shape, dtype=data.dtype.str, eb_value=eb.value,
            eb_mode=eb.mode.value, eb_abs=eb_abs, radius=radius,
            modules={"preprocess": "rel-eb", "predictor": "lorenzo",
                     "encoder": won, "secondary": "none",
                     **({"statistics": "histogram"} if won == "huffman"
                        else {})},
            stage_meta={"predictor": {}, "preprocess": {},
                        "encoder": dict(stream.meta),
                        "outliers": {"count": int(ocount)}})
        header_bytes, body = assemble(header, sections)
        blob = header_bytes + body
        stats = CompressionStats(
            input_bytes=data.nbytes, output_bytes=len(blob),
            element_count=data.size, eb_abs=eb_abs,
            code_fraction=ld_codes.get().nbytes / data.nbytes,
            outlier_fraction=(len(idx) + len(val)) / data.nbytes,
            outlier_count=int(ocount),
            section_sizes={k: len(v) for k, v in sections.items()},
            stage_seconds={"stf-makespan": report.makespan})
        return CompressedField(blob=blob, stats=stats, header=header)
