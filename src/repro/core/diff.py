"""Container diffing — regression analysis for codec changes.

When a kernel or module changes, the question is "what happened to my
containers?".  ``diff_containers`` compares two compressed fields on three
levels — header/configuration, per-section sizes, and (optionally) the
reconstructed values — and reports the differences structurally.  Backs
``fzmod diff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import HeaderError
from .header import parse
from .pipeline import decompress


@dataclass
class ContainerDiff:
    """Structured comparison of two containers."""

    identical_bytes: bool
    header_changes: dict[str, tuple] = field(default_factory=dict)
    section_changes: dict[str, tuple[int, int]] = field(default_factory=dict)
    size_a: int = 0
    size_b: int = 0
    max_value_delta: float | None = None
    reconstructions_equal: bool | None = None

    @property
    def size_delta(self) -> int:
        return self.size_b - self.size_a

    def render(self) -> str:
        """Human-readable summary of the differences."""
        if self.identical_bytes:
            return "containers are byte-identical"
        lines = [f"size: {self.size_a} -> {self.size_b} B "
                 f"({self.size_delta:+d})"]
        for key, (a, b) in sorted(self.header_changes.items()):
            lines.append(f"header.{key}: {a!r} -> {b!r}")
        for name, (a, b) in sorted(self.section_changes.items()):
            lines.append(f"section {name}: {a} -> {b} B ({b - a:+d})")
        if self.reconstructions_equal is not None:
            if self.reconstructions_equal:
                lines.append("reconstructions: bit-identical")
            else:
                lines.append(f"reconstructions differ, max |delta| = "
                             f"{self.max_value_delta:.6g}")
        return "\n".join(lines)


def diff_containers(blob_a: bytes, blob_b: bytes,
                    compare_values: bool = True) -> ContainerDiff:
    """Compare two pipeline/baseline containers.

    ``compare_values=True`` also decodes both (via their own headers) and
    compares the reconstructions; requires compatible shapes.
    """
    if blob_a == blob_b:
        return ContainerDiff(identical_bytes=True,
                             size_a=len(blob_a), size_b=len(blob_b))
    ha, _ = parse(blob_a)
    hb, _ = parse(blob_b)
    diff = ContainerDiff(identical_bytes=False,
                         size_a=len(blob_a), size_b=len(blob_b))

    for key in ("shape", "dtype", "eb_value", "eb_mode", "eb_abs",
                "radius", "modules"):
        va, vb = getattr(ha, key), getattr(hb, key)
        if va != vb:
            diff.header_changes[key] = (va, vb)

    sa = {n: l for n, _, l in ha.sections}
    sb = {n: l for n, _, l in hb.sections}
    for name in sorted(set(sa) | set(sb)):
        a, b = sa.get(name, 0), sb.get(name, 0)
        if a != b:
            diff.section_changes[name] = (a, b)

    if compare_values:
        if ha.shape != hb.shape or ha.np_dtype != hb.np_dtype:
            raise HeaderError("cannot value-compare containers with "
                              "different geometry")
        from ..baselines import get_compressor
        def _decode(blob, header):
            if "baseline" in header.modules:
                return get_compressor(header.modules["baseline"]) \
                    .decompress(blob)
            return decompress(blob)
        ra = _decode(blob_a, ha)
        rb = _decode(blob_b, hb)
        diff.reconstructions_equal = bool(np.array_equal(ra, rb))
        diff.max_value_delta = float(
            np.abs(ra.astype(np.float64) - rb.astype(np.float64)).max())
    return diff
