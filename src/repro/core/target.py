"""Target-driven error-bound search.

Practitioners rarely know the right error bound; they know the quality or
budget they need — "at least 60 dB PSNR", "at most 2 bits per value",
"CR 20 or better".  Following the quality-metric-oriented line of work the
paper cites (Liu et al., SC'22 [19]), this module searches the bound that
meets a target by bisection on ``log10(eb)``, exploiting that CR grows and
PSNR falls monotonically in the bound.

The returned :class:`TargetResult` includes the full search trace so
callers can see the trade-off curve the search walked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..metrics.quality import psnr
from ..types import EbMode, ErrorBound
from .pipeline import CompressedField, Pipeline, decompress

METRICS = ("psnr", "cr", "bit_rate")


@dataclass(frozen=True)
class SearchPoint:
    eb: float
    cr: float
    psnr_db: float
    bit_rate: float


@dataclass
class TargetResult:
    """Outcome of a target search."""

    metric: str
    target: float
    eb: float
    compressed: CompressedField
    achieved: float
    trace: list[SearchPoint] = field(default_factory=list)
    converged: bool = True


def _evaluate(pipeline: Pipeline, data: np.ndarray, eb: float,
              mode: EbMode) -> tuple[CompressedField, SearchPoint]:
    cf = pipeline.compress(data, ErrorBound(eb, mode))
    recon = decompress(cf.blob)
    point = SearchPoint(eb=eb, cr=cf.stats.cr,
                        psnr_db=float(psnr(data, recon)),
                        bit_rate=cf.stats.bit_rate)
    return cf, point


def _achieved(point: SearchPoint, metric: str) -> float:
    return {"psnr": point.psnr_db, "cr": point.cr,
            "bit_rate": point.bit_rate}[metric]


def _satisfied(value: float, metric: str, target: float) -> bool:
    # psnr and cr are at-least targets; bit_rate is an at-most budget
    if metric in ("psnr", "cr"):
        return value >= target
    return value <= target


def compress_to_target(data: np.ndarray, pipeline: Pipeline, metric: str,
                       target: float, mode: EbMode | str = EbMode.REL,
                       eb_lo: float = 1e-8, eb_hi: float = 1e-1,
                       max_iter: int = 12, rel_tol: float = 0.02
                       ) -> TargetResult:
    """Find the loosest bound meeting ``target`` and return its container.

    ``metric`` is one of ``"psnr"`` (dB, at-least), ``"cr"`` (at-least) or
    ``"bit_rate"`` (bits/value, at-most).  The loosest satisfying bound
    maximises CR subject to the quality constraint (for psnr/bit_rate) or
    maximises quality subject to the size constraint (for cr).

    Monotonicity used: tightening ``eb`` raises PSNR and bit rate and
    lowers CR.  Bisection runs on ``log10(eb)``; if even the search-range
    endpoints cannot satisfy the target, ``converged`` is False and the
    closest endpoint is returned.
    """
    if metric not in METRICS:
        raise ConfigError(f"metric must be one of {METRICS}")
    if not (0 < eb_lo < eb_hi):
        raise ConfigError("need 0 < eb_lo < eb_hi")
    mode = EbMode(mode)
    trace: list[SearchPoint] = []

    # psnr: satisfied at small eb -> want the LARGEST satisfying eb
    # bit_rate: satisfied at large eb? bit_rate falls as eb grows -> largest
    #   satisfying is the one just meeting the budget... we want the
    #   SMALLEST eb whose rate fits (max quality within budget).
    # cr: satisfied at large eb -> want the SMALLEST satisfying eb (best
    #   quality at the required ratio).
    want_largest = metric == "psnr"

    cf_lo, p_lo = _evaluate(pipeline, data, eb_lo, mode)
    trace.append(p_lo)
    cf_hi, p_hi = _evaluate(pipeline, data, eb_hi, mode)
    trace.append(p_hi)

    sat_lo = _satisfied(_achieved(p_lo, metric), metric, target)
    sat_hi = _satisfied(_achieved(p_hi, metric), metric, target)

    if want_largest:
        if sat_hi:  # loosest endpoint already good
            return TargetResult(metric, target, eb_hi, cf_hi,
                                _achieved(p_hi, metric), trace)
        if not sat_lo:
            return TargetResult(metric, target, eb_lo, cf_lo,
                                _achieved(p_lo, metric), trace,
                                converged=False)
    else:
        if sat_lo:  # tightest endpoint already good
            return TargetResult(metric, target, eb_lo, cf_lo,
                                _achieved(p_lo, metric), trace)
        if not sat_hi:
            return TargetResult(metric, target, eb_hi, cf_hi,
                                _achieved(p_hi, metric), trace,
                                converged=False)

    lo, hi = np.log10(eb_lo), np.log10(eb_hi)
    best_cf, best_point = (cf_lo, p_lo) if want_largest else (cf_hi, p_hi)
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        eb = float(10.0 ** mid)
        cf, point = _evaluate(pipeline, data, eb, mode)
        trace.append(point)
        ok = _satisfied(_achieved(point, metric), metric, target)
        if want_largest:
            if ok:
                best_cf, best_point = cf, point
                lo = mid
            else:
                hi = mid
        else:
            if ok:
                best_cf, best_point = cf, point
                hi = mid
            else:
                lo = mid
        if hi - lo < np.log10(1.0 + rel_tol):
            break
    return TargetResult(metric, target, best_point.eb, best_cf,
                        _achieved(best_point, metric), trace)
