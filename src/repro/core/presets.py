"""The three highlighted pipelines of §3.3.

* **FZMod-Default** — Lorenzo predictor + standard histogram + CPU Huffman:
  balances throughput, ratio and quality.
* **FZMod-Speed** — Lorenzo + FZ-GPU bitshuffle/dictionary encoding: trades
  ratio for encoder throughput.
* **FZMod-Quality** — G-Interp predictor + top-k histogram + Huffman:
  trades predictor throughput for rate-distortion.

Each preset accepts an optional secondary module name (the paper supports
zstd as the secondary encoder; ``"zstd-like"`` here).
"""

from __future__ import annotations

from .pipeline import DEFAULT_RADIUS, Pipeline
from .registry import DEFAULT_REGISTRY, ModuleRegistry

PRESET_NAMES = ("fzmod-default", "fzmod-speed", "fzmod-quality")


def fzmod_default(secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                  registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """Lorenzo + histogram + Huffman (the framework default)."""
    return Pipeline.from_names(
        preprocess="rel-eb", predictor="lorenzo", statistics="histogram",
        encoder="huffman", secondary=secondary, radius=radius,
        name="fzmod-default", registry=registry)


def fzmod_speed(secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """Lorenzo + bitshuffle/dictionary (throughput-oriented)."""
    return Pipeline.from_names(
        preprocess="rel-eb", predictor="lorenzo", statistics=None,
        encoder="bitshuffle", secondary=secondary, radius=radius,
        name="fzmod-speed", registry=registry)


def fzmod_quality(secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                  registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """G-Interp + top-k histogram + Huffman (quality-oriented)."""
    return Pipeline.from_names(
        preprocess="rel-eb", predictor="interp", statistics="histogram-topk",
        encoder="huffman", secondary=secondary, radius=radius,
        name="fzmod-quality", registry=registry)


def get_preset(name: str, secondary: str | None = None,
               radius: int = DEFAULT_RADIUS) -> Pipeline:
    """Look up a preset pipeline by its canonical name."""
    table = {"fzmod-default": fzmod_default, "fzmod-speed": fzmod_speed,
             "fzmod-quality": fzmod_quality}
    try:
        factory = table[name.lower()]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; have {PRESET_NAMES}") from None
    return factory(secondary=secondary, radius=radius)
