"""The three highlighted pipelines of §3.3.

* **FZMod-Default** — Lorenzo predictor + standard histogram + CPU Huffman:
  balances throughput, ratio and quality.
* **FZMod-Speed** — Lorenzo + FZ-GPU bitshuffle/dictionary encoding: trades
  ratio for encoder throughput.
* **FZMod-Quality** — G-Interp predictor + top-k histogram + Huffman:
  trades predictor throughput for rate-distortion.

Each preset is a frozen :class:`~repro.core.spec.PipelineSpec` in
:data:`PRESET_SPECS`; the factory functions are thin delegates that
customise the spec (secondary module, radius) and hand it to
:meth:`Pipeline.from_spec` against the chosen registry.  The paper
supports zstd as the secondary encoder; ``"zstd-like"`` here.
"""

from __future__ import annotations

from .pipeline import DEFAULT_RADIUS, Pipeline
from .registry import DEFAULT_REGISTRY, ModuleRegistry
from .spec import PipelineSpec

#: The canonical spec of each highlighted pipeline.
PRESET_SPECS: dict[str, PipelineSpec] = {
    "fzmod-default": PipelineSpec(
        preprocess="rel-eb", predictor="lorenzo", statistics="histogram",
        encoder="huffman", name="fzmod-default"),
    "fzmod-speed": PipelineSpec(
        preprocess="rel-eb", predictor="lorenzo", statistics=None,
        encoder="bitshuffle", name="fzmod-speed"),
    "fzmod-quality": PipelineSpec(
        preprocess="rel-eb", predictor="interp", statistics="histogram-topk",
        encoder="huffman", name="fzmod-quality"),
}

PRESET_NAMES = tuple(PRESET_SPECS)


def get_preset_spec(name: str, secondary: str | None = None,
                    radius: int = DEFAULT_RADIUS) -> PipelineSpec:
    """Look up a preset's spec (customised but not yet built)."""
    try:
        spec = PRESET_SPECS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; have {PRESET_NAMES}") from None
    return spec.replace(secondary=secondary, radius=radius)


def get_preset(name: str, secondary: str | None = None,
               radius: int = DEFAULT_RADIUS,
               registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """Build a preset pipeline by its canonical name.

    ``registry`` is honoured throughout, so presets can be constructed
    against a custom :class:`ModuleRegistry` (e.g. one with a replacement
    histogram) without touching the process-wide default.
    """
    return Pipeline.from_spec(get_preset_spec(name, secondary, radius),
                              registry=registry)


def fzmod_default(secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                  registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """Lorenzo + histogram + Huffman (the framework default)."""
    return get_preset("fzmod-default", secondary, radius, registry)


def fzmod_speed(secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """Lorenzo + bitshuffle/dictionary (throughput-oriented)."""
    return get_preset("fzmod-speed", secondary, radius, registry)


def fzmod_quality(secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                  registry: ModuleRegistry = DEFAULT_REGISTRY) -> Pipeline:
    """G-Interp + top-k histogram + Huffman (quality-oriented)."""
    return get_preset("fzmod-quality", secondary, radius, registry)
