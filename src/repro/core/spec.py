"""The canonical pipeline description: :class:`PipelineSpec`.

Every way of naming a pipeline — the fluent builder, the §3.3 presets,
``Pipeline.from_names``, the CLI flags, the container header, and the
sharded parallel executor — reduces to one frozen, JSON-serialisable
value object: stage module *names* plus the quant-code radius and a
display name.  Specs are what travels across process boundaries (the
parallel executor ships specs, never module instances) and what the
container header stores, so any process with the same modules registered
can reassemble the exact pipeline that produced a blob.

The spec is deliberately dependency-light (names only, no module or
registry imports) so every subsystem can import it without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import HeaderError, PipelineError

#: Default quant-code radius (cuSZ's 1024-symbol dictionary).
DEFAULT_RADIUS = 512


@dataclass(frozen=True)
class PipelineSpec:
    """A complete, immutable description of a compression pipeline.

    Attributes
    ----------
    preprocess / predictor / statistics / encoder / secondary:
        Registry names of the stage modules.  ``statistics`` and
        ``secondary`` may be ``None`` (no statistics stage / identity
        secondary).
    radius:
        Quant-code radius; the code alphabet is ``2 * radius`` symbols.
    name:
        Display name (stored in archives and reports, not semantic).
    """

    preprocess: str = "rel-eb"
    predictor: str = "lorenzo"
    statistics: str | None = None
    encoder: str = "huffman"
    secondary: str | None = None
    radius: int = DEFAULT_RADIUS
    name: str = "custom"

    def __post_init__(self) -> None:
        for stage in ("preprocess", "predictor", "encoder"):
            value = getattr(self, stage)
            if not isinstance(value, str) or not value:
                raise PipelineError(
                    f"spec field {stage!r} must be a non-empty module name, "
                    f"got {value!r}")
        for stage in ("statistics", "secondary"):
            value = getattr(self, stage)
            if value is not None and (not isinstance(value, str) or not value):
                raise PipelineError(
                    f"spec field {stage!r} must be None or a module name, "
                    f"got {value!r}")
        if not isinstance(self.radius, int) or isinstance(self.radius, bool):
            raise PipelineError(f"radius must be an int, got {self.radius!r}")
        if self.radius < 1:
            raise PipelineError(f"radius must be >= 1, got {self.radius}")

    # ------------------------------------------------------------------ #
    def replace(self, **changes) -> "PipelineSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def stage_names(self) -> dict[str, str]:
        """``{stage: module-name}`` for the stages that are present."""
        names = {"preprocess": self.preprocess, "predictor": self.predictor,
                 "encoder": self.encoder}
        if self.statistics is not None:
            names["statistics"] = self.statistics
        if self.secondary is not None:
            names["secondary"] = self.secondary
        return names

    # ------------------------------------------------------------------ #
    def to_json(self) -> dict:
        """JSON-serialisable form (round-trips through :meth:`from_json`)."""
        return {
            "preprocess": self.preprocess,
            "predictor": self.predictor,
            "statistics": self.statistics,
            "encoder": self.encoder,
            "secondary": self.secondary,
            "radius": self.radius,
            "name": self.name,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "PipelineSpec":
        """Rebuild a spec from :meth:`to_json` output (header payloads)."""
        if not isinstance(obj, dict):
            raise HeaderError(f"malformed pipeline spec: {obj!r}")
        try:
            return cls(
                preprocess=str(obj["preprocess"]),
                predictor=str(obj["predictor"]),
                statistics=(None if obj.get("statistics") is None
                            else str(obj["statistics"])),
                encoder=str(obj["encoder"]),
                secondary=(None if obj.get("secondary") is None
                           else str(obj["secondary"])),
                radius=int(obj.get("radius", DEFAULT_RADIUS)),
                name=str(obj.get("name", "custom")),
            )
        except (KeyError, TypeError, ValueError, PipelineError) as exc:
            raise HeaderError(f"malformed pipeline spec: {exc}") from exc

    def describe(self) -> str:
        """One-line human rendering (CLI/report output)."""
        stages = [self.preprocess, self.predictor]
        if self.statistics is not None:
            stages.append(self.statistics)
        stages.append(self.encoder)
        if self.secondary is not None:
            stages.append(self.secondary)
        return f"{self.name}: " + " -> ".join(stages) + f" (radius={self.radius})"

    def compile(self, registry=None):
        """Assemble this spec and compile it into a fused execution plan.

        Returns the content-cached :class:`~repro.compile.CompiledPlan`
        (so repeated calls are cheap) or raises
        :class:`~repro.errors.PipelineError` when the compiler declines a
        stage.  ``registry`` defaults to the process-wide module registry.
        """
        from .pipeline import Pipeline
        from .registry import DEFAULT_REGISTRY
        return Pipeline.from_spec(
            self, registry=registry if registry is not None
            else DEFAULT_REGISTRY).compile()
