"""The standard module library shipped with the framework (§3.2).

Preprocessors
    ``abs-eb`` / ``rel-eb`` — absolute vs value-range-relative bounds.
Predictors
    ``lorenzo`` (cuSZ) and ``interp`` (G-Interp, cuSZ-i).
Statistics
    ``histogram`` (standard) and ``histogram-topk``.
Encoders
    ``huffman`` (CPU canonical Huffman, needs a histogram) and
    ``bitshuffle`` (FZ-GPU zigzag + bit-plane shuffle + zero elimination).
Secondary
    ``zstd-like`` (token-dedup + Huffman, the offline zstd substitute),
    ``rle`` and ``none``.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from ..kernels import (bitshuffle, dictionary, histogram as khist, huffman,
                       interp, lorenzo, lz, quantize, rle)
from ..kernels.histogram import HistogramResult
from ..kernels.quantize import OutlierSet
from ..types import EbMode, ErrorBound
from .header import as_bytes_view
from .module import (EncodedStream, EncoderModule, PredictorArtifacts,
                     PredictorModule, PreprocessModule, PreprocessResult,
                     SecondaryModule, StatisticsModule)


# ---------------------------------------------------------------------- #
# preprocess                                                              #
# ---------------------------------------------------------------------- #
class AbsEbPreprocess(PreprocessModule):
    """Pass-through preprocessor for absolute error bounds."""

    name = "abs-eb"

    def forward(self, data: np.ndarray, eb: ErrorBound) -> PreprocessResult:
        return PreprocessResult(data=data, eb_abs=eb.absolute(0.0, 0.0),
                                meta={"mode": EbMode.ABS.value})


class RelEbPreprocess(PreprocessModule):
    """Value-range-relative bounds: scans min/max and scales the bound.

    This is the paper's evaluation mode ("value-range-based relative error
    bound"); the range scan is the single extra pass this module costs.
    """

    name = "rel-eb"

    def forward(self, data: np.ndarray, eb: ErrorBound) -> PreprocessResult:
        lo = float(data.min())
        hi = float(data.max())
        # ErrorBound.absolute honours the bound's own mode, so an ABS bound
        # passes through unchanged even in the range-scanning preprocessor.
        return PreprocessResult(data=data, eb_abs=eb.absolute(lo, hi),
                                meta={"mode": eb.mode.value,
                                      "min": lo, "max": hi})


# ---------------------------------------------------------------------- #
# predictors                                                              #
# ---------------------------------------------------------------------- #
class LorenzoPredictor(PredictorModule):
    """cuSZ multidimensional Lorenzo predictor + dual quantisation."""

    name = "lorenzo"

    def encode(self, data: np.ndarray, eb_abs: float, radius: int
               ) -> PredictorArtifacts:
        res = lorenzo.compress(data, eb_abs, radius)
        return PredictorArtifacts(codes=res.codes.reshape(-1),
                                  outliers=res.outliers, anchors=None,
                                  meta={})

    def decode(self, artifacts: PredictorArtifacts, shape: tuple[int, ...],
               dtype: np.dtype, eb_abs: float, radius: int) -> np.ndarray:
        return lorenzo.decompress_parts(
            codes=artifacts.codes.reshape(shape), outliers=artifacts.outliers,
            radius=radius, eb_abs=eb_abs, shape=shape, dtype=dtype)


class InterpPredictor(PredictorModule):
    """G-Interp multilevel spline interpolation predictor (cuSZ-i)."""

    name = "interp"

    def __init__(self, max_level: int | None = None) -> None:
        self.max_level = max_level

    def encode(self, data: np.ndarray, eb_abs: float, radius: int
               ) -> PredictorArtifacts:
        res = interp.compress(data, eb_abs, radius, max_level=self.max_level)
        return PredictorArtifacts(codes=res.codes, outliers=res.outliers,
                                  anchors=res.anchors,
                                  meta={"max_level": res.max_level})

    def decode(self, artifacts: PredictorArtifacts, shape: tuple[int, ...],
               dtype: np.dtype, eb_abs: float, radius: int) -> np.ndarray:
        if artifacts.anchors is None:
            raise CodecError("interp artifacts missing anchors")
        res = interp.InterpResult(
            codes=artifacts.codes, outliers=artifacts.outliers,
            anchors=artifacts.anchors.astype(dtype), radius=radius,
            eb_abs=eb_abs, max_level=int(artifacts.meta["max_level"]),
            shape=shape, dtype=np.dtype(dtype))
        return interp.decompress(res)


# ---------------------------------------------------------------------- #
# statistics                                                              #
# ---------------------------------------------------------------------- #
class StandardHistogram(StatisticsModule):
    """Dense GPU-style histogram of the quant codes."""

    name = "histogram"

    def collect(self, codes: np.ndarray, num_bins: int) -> HistogramResult:
        return khist.histogram(codes, num_bins)


class TopKHistogram(StatisticsModule):
    """Sparsity-aware top-k histogram (preferred after high-quality
    prediction, per §3.2)."""

    name = "histogram-topk"

    def __init__(self, k: int = 16) -> None:
        self.k = k

    def collect(self, codes: np.ndarray, num_bins: int) -> HistogramResult:
        return khist.histogram_topk(codes, num_bins, k=self.k)


# ---------------------------------------------------------------------- #
# encoders                                                                #
# ---------------------------------------------------------------------- #
class HuffmanEncoder(EncoderModule):
    """Chunked canonical Huffman over quant codes (CPU stage of
    FZMod-Default/Quality); optimal-ratio, slower than bitshuffle."""

    name = "huffman"
    needs_statistics = True

    def __init__(self, chunk: int = huffman.DEFAULT_CHUNK,
                 max_len: int = huffman.DEFAULT_MAX_LEN, *,
                 fixed_lengths: np.ndarray | None = None,
                 emit_lengths: bool = True) -> None:
        self.chunk = chunk
        self.max_len = max_len
        self.fixed_lengths = (None if fixed_lengths is None
                              else np.asarray(fixed_lengths, dtype=np.uint8))
        self.emit_lengths = emit_lengths
        if self.fixed_lengths is not None:
            # shadow the class attribute: a pinned codebook needs no
            # histogram, so the pipeline skips the statistics stage
            self.needs_statistics = False

    def with_fixed_codebook(self, lengths: np.ndarray) -> "HuffmanEncoder":
        """A clone that encodes with a pinned canonical codebook.

        The clone neither collects statistics nor stores the lengths in
        its containers (``emit_lengths=False``) — the caller owns the
        codebook and must supply it again at decode time.  Used by the
        shared-codebook sharding mode; the registry instance itself is
        never mutated (modules must stay stateless).
        """
        return HuffmanEncoder(chunk=self.chunk, max_len=self.max_len,
                              fixed_lengths=lengths, emit_lengths=False)

    def encode(self, codes: np.ndarray, num_bins: int,
               hist: HistogramResult | None) -> EncodedStream:
        if self.fixed_lengths is not None:
            if codes.size == 0:
                enc = huffman.encode_empty(num_bins, max_len=self.max_len)
            else:
                book = huffman.warm_decode_book(self.fixed_lengths,
                                                self.max_len)
                enc = huffman.encode(codes, book, chunk=self.chunk)
        elif hist is None:
            raise CodecError("huffman encoder requires a statistics stage")
        elif codes.size == 0:
            enc = huffman.encode_empty(num_bins, max_len=self.max_len)
        else:
            book = huffman.build_codebook(hist.counts, max_len=self.max_len)
            enc = huffman.encode(codes, book, chunk=self.chunk)
        sections = {
            "enc.payload": enc.payload,
            "enc.chunk_syms": as_bytes_view(enc.chunk_symbols),
            "enc.chunk_bits": as_bytes_view(enc.chunk_bits),
        }
        if self.emit_lengths:
            sections["enc.lengths"] = as_bytes_view(enc.lengths)
        return EncodedStream(
            sections=sections,
            meta={"count": enc.count, "max_len": enc.max_len,
                  "nchunks": int(enc.chunk_symbols.size)})

    def decode(self, stream: EncodedStream, count: int, num_bins: int
               ) -> np.ndarray:
        nchunks = int(stream.meta["nchunks"])
        enc = huffman.HuffmanEncoded(
            payload=stream.sections["enc.payload"],
            chunk_symbols=np.frombuffer(stream.sections["enc.chunk_syms"],
                                        dtype=np.int64, count=nchunks),
            chunk_bits=np.frombuffer(stream.sections["enc.chunk_bits"],
                                     dtype=np.int64, count=nchunks),
            count=int(stream.meta["count"]),
            lengths=np.frombuffer(stream.sections["enc.lengths"], dtype=np.uint8),
            max_len=int(stream.meta["max_len"]))
        out = huffman.decode(enc)
        if out.size != count:
            raise CodecError("huffman decode count mismatch")
        return out.astype(np.uint16 if num_bins <= 65536 else np.uint32)


class BitshuffleEncoder(EncoderModule):
    """FZ-GPU-style encoder: recentre + zigzag + bit-plane shuffle +
    hierarchical zero elimination.  Much faster than Huffman on a GPU,
    lower ratio (the FZMod-Speed trade)."""

    name = "bitshuffle"
    needs_statistics = False

    def __init__(self, word_bytes: int = dictionary.WORD_BYTES) -> None:
        self.word_bytes = word_bytes

    def encode(self, codes: np.ndarray, num_bins: int,
               hist: HistogramResult | None) -> EncodedStream:
        radius = num_bins // 2
        signed = codes.astype(np.int64) - radius
        zz = bitshuffle.zigzag(signed)
        width = 16 if num_bins <= 65536 else 32
        if zz.size and int(zz.max()) >> width:
            raise CodecError("zigzagged code exceeds shuffle width")
        shuffled = bitshuffle.shuffle(zz.astype(np.uint16 if width == 16
                                                else np.uint32), width)
        # Flat (single-level) bitmap, as in the staged FZ-GPU port: cheaper
        # to produce but caps the ratio on near-constant data (the paper's
        # FZMod-Speed posts visibly lower CRs than fused FZ-GPU).
        z = dictionary.eliminate(shuffled, word_bytes=self.word_bytes,
                                 two_level=False)
        return EncodedStream(
            sections={"enc.bitmap2": z.bitmap2, "enc.bitmap1": z.bitmap1,
                      "enc.words": z.words},
            meta={"count": int(codes.size), "orig_len": z.orig_len,
                  "word_bytes": z.word_bytes, "width": width})

    def decode(self, stream: EncodedStream, count: int, num_bins: int
               ) -> np.ndarray:
        z = dictionary.ZeroEliminated(
            bitmap2=stream.sections["enc.bitmap2"],
            bitmap1=stream.sections["enc.bitmap1"],
            words=stream.sections["enc.words"],
            orig_len=int(stream.meta["orig_len"]),
            word_bytes=int(stream.meta["word_bytes"]))
        shuffled = dictionary.restore(z)
        width = int(stream.meta["width"])
        zz = bitshuffle.unshuffle(shuffled, count, width)
        signed = bitshuffle.unzigzag(zz.astype(np.uint64))
        radius = num_bins // 2
        out = signed + radius
        if out.size and (int(out.min()) < 0 or int(out.max()) >= num_bins):
            raise CodecError("bitshuffle decode produced out-of-range code")
        return out.astype(np.uint16 if num_bins <= 65536 else np.uint32)


# ---------------------------------------------------------------------- #
# secondary                                                               #
# ---------------------------------------------------------------------- #
class ZstdLikeSecondary(SecondaryModule):
    """Generic lossless pass (offline stand-in for the paper's zstd)."""

    name = "zstd-like"

    def encode(self, body: bytes) -> bytes:
        return lz.compress(body)

    def decode(self, body: bytes) -> bytes:
        return lz.decompress(body)


class RleSecondary(SecondaryModule):
    """Byte run-length secondary pass (cheap, weaker alternative)."""

    name = "rle"

    def encode(self, body: bytes) -> bytes:
        out = rle.encode(body)
        # never let RLE expand past a 1-byte mode marker
        if len(out) + 1 < len(body):
            return b"\x01" + out
        return b"\x00" + body

    def decode(self, body: bytes) -> bytes:
        if not body:
            raise CodecError("empty RLE secondary body")
        if body[0] == 0x01:
            return rle.decode(body[1:])
        if body[0] == 0x00:
            return body[1:]
        raise CodecError("bad RLE secondary marker")


class NoSecondary(SecondaryModule):
    """Identity secondary stage (the default for speed-oriented pipelines)."""

    name = "none"

    def encode(self, body: bytes) -> bytes:
        return body

    def decode(self, body: bytes) -> bytes:
        return body
