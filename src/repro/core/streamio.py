"""Out-of-core streaming compression.

Extreme-scale fields don't fit in memory — the producing application
writes them slab by slab.  :class:`StreamingCompressor` accepts slabs
(chunks along axis 0), compresses each independently, and appends it to a
file object immediately, so peak memory is one slab.  The member index is
written *last* with a fixed-size trailer pointing at it, which is what
makes the format appendable (a crash mid-write loses only the tail).

Layout::

    magic "FZST" | u16 version | member blobs ... | index JSON |
    u64 index_offset | u32 index_len | magic "TSZF"

:class:`StreamingDecompressor` reads the trailer, then serves slabs lazily
(sequentially or by index) and can reassemble the full field when it does
fit in memory.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass
from typing import BinaryIO

import numpy as np

from ..errors import ConfigError, HeaderError
from ..types import EbMode, ErrorBound, check_field
from .pipeline import Pipeline, decompress

STREAM_MAGIC = b"FZST"
STREAM_END_MAGIC = b"TSZF"
STREAM_VERSION = 1
_HEAD = struct.Struct("<4sH")
_TRAILER = struct.Struct("<QI4s")


@dataclass(frozen=True)
class SlabEntry:
    offset: int
    length: int
    rows: int


class StreamingCompressor:
    """Slab-at-a-time compressor writing straight to a file object."""

    def __init__(self, fh: BinaryIO, pipeline: Pipeline,
                 eb: ErrorBound | float, mode: EbMode | str = EbMode.REL
                 ) -> None:
        self.fh = fh
        self.pipeline = pipeline
        if not isinstance(eb, ErrorBound):
            eb = ErrorBound(float(eb), EbMode(mode))
        self._eb_user = eb
        self._eb_abs: float | None = None
        self._entries: list[SlabEntry] = []
        self._tail_shape: tuple[int, ...] | None = None
        self._dtype: str | None = None
        self._closed = False
        fh.write(_HEAD.pack(STREAM_MAGIC, STREAM_VERSION))
        self._pos = _HEAD.size

    def write_slab(self, slab: np.ndarray) -> float:
        """Compress and append one slab; returns its CR.

        All slabs must agree on dtype and on every dimension except the
        first.  REL bounds resolve against the *first* slab's range and
        freeze (consistent with the temporal stream's semantics; pass an
        ABS bound for strict global control).
        """
        if self._closed:
            raise ConfigError("stream already closed")
        slab = check_field(slab)
        tail = slab.shape[1:]
        if self._tail_shape is None:
            self._tail_shape = tail
            self._dtype = slab.dtype.str
        elif tail != self._tail_shape or slab.dtype.str != self._dtype:
            raise ConfigError("slab geometry/dtype mismatch")
        if self._eb_abs is None:
            self._eb_abs = self._eb_user.absolute(float(slab.min()),
                                                  float(slab.max()))
        cf = self.pipeline.compress(slab, ErrorBound(self._eb_abs,
                                                     EbMode.ABS))
        self._entries.append(SlabEntry(offset=self._pos, length=len(cf.blob),
                                       rows=slab.shape[0]))
        self.fh.write(cf.blob)
        self._pos += len(cf.blob)
        return cf.stats.cr

    def close(self) -> dict:
        """Write the index + trailer; returns summary stats."""
        if self._closed:
            raise ConfigError("stream already closed")
        if not self._entries:
            raise ConfigError("no slabs written")
        self._closed = True
        index = {
            "dtype": self._dtype,
            "tail_shape": list(self._tail_shape),
            "eb_abs": self._eb_abs,
            "slabs": [[e.offset, e.length, e.rows] for e in self._entries],
        }
        blob = json.dumps(index, separators=(",", ":")).encode("utf-8")
        index_offset = self._pos
        self.fh.write(blob)
        self.fh.write(_TRAILER.pack(index_offset, len(blob),
                                    STREAM_END_MAGIC))
        total_rows = sum(e.rows for e in self._entries)
        return {"slabs": len(self._entries), "rows": total_rows,
                "compressed_bytes": self._pos + len(blob) + _TRAILER.size}


class StreamingDecompressor:
    """Lazy reader for a streamed container."""

    def __init__(self, fh: BinaryIO) -> None:
        self.fh = fh
        head = fh.read(_HEAD.size)
        magic, version = _HEAD.unpack(head)
        if magic != STREAM_MAGIC:
            raise HeaderError(f"bad stream magic {magic!r}")
        if version != STREAM_VERSION:
            raise HeaderError(f"unsupported stream version {version}")
        fh.seek(-_TRAILER.size, io.SEEK_END)
        index_offset, index_len, end_magic = _TRAILER.unpack(
            fh.read(_TRAILER.size))
        if end_magic != STREAM_END_MAGIC:
            raise HeaderError("stream trailer missing (truncated write?)")
        fh.seek(index_offset)
        try:
            index = json.loads(fh.read(index_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HeaderError(f"unreadable stream index: {exc}") from exc
        self.dtype = np.dtype(index["dtype"])
        self.tail_shape = tuple(int(x) for x in index["tail_shape"])
        self.eb_abs = float(index["eb_abs"])
        self.slabs = [SlabEntry(offset=o, length=l, rows=r)
                      for o, l, r in index["slabs"]]

    @property
    def slab_count(self) -> int:
        return len(self.slabs)

    @property
    def total_rows(self) -> int:
        return sum(e.rows for e in self.slabs)

    def read_slab(self, k: int) -> np.ndarray:
        """Decompress slab ``k`` (seeks directly to its bytes)."""
        if not (0 <= k < len(self.slabs)):
            raise ConfigError(f"slab {k} outside [0, {len(self.slabs)})")
        e = self.slabs[k]
        self.fh.seek(e.offset)
        blob = self.fh.read(e.length)
        if len(blob) != e.length:
            raise HeaderError(f"slab {k} truncated")
        return decompress(blob)

    def iter_slabs(self):
        """Yield every slab in order, decoding lazily."""
        for k in range(len(self.slabs)):
            yield self.read_slab(k)

    def read_full(self) -> np.ndarray:
        """Reassemble the whole field (must fit in memory)."""
        return np.concatenate(list(self.iter_slabs()), axis=0)
