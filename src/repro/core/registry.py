"""Module registry: name -> module instance, per stage.

Pipelines are described by module *names* (which is what the container
header stores), so decompression can reassemble the exact pipeline that
produced a blob.  Users extend the framework by registering their own
module instances; see ``examples/custom_module.py``.
"""

from __future__ import annotations

from ..errors import ModuleNotFoundInRegistry, PipelineError
from ..types import Stage
from .module import Module
from .modules_extra import (AbsAndRelPreprocess, AutoTransposePreprocess,
                            BitcompLikeSecondary, FixedLenEncoder,
                            PwRelPreprocess, RegressionPredictor)
from .modules_std import (AbsEbPreprocess, BitshuffleEncoder, HuffmanEncoder,
                          InterpPredictor, LorenzoPredictor, NoSecondary,
                          RelEbPreprocess, RleSecondary, StandardHistogram,
                          TopKHistogram, ZstdLikeSecondary)


class ModuleRegistry:
    """A per-stage name -> instance table."""

    def __init__(self) -> None:
        self._modules: dict[Stage, dict[str, Module]] = {s: {} for s in Stage}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Bumped on every (un)register; cache keys derived from this
        registry include it so stale module tables can never be served."""
        return self._generation

    def register(self, module: Module, *, replace: bool = False) -> Module:
        """Add a module instance under its (stage, name) key."""
        table = self._modules[module.stage]
        if module.name in table and not replace:
            raise PipelineError(
                f"module {module.name!r} already registered for stage "
                f"{module.stage.value}; pass replace=True to override")
        table[module.name] = module
        self._generation += 1
        return module

    def unregister(self, stage: Stage, name: str) -> Module:
        """Remove and return a module (raises if absent).

        The counterpart of :meth:`register`, so tests and examples that
        temporarily extend a registry can restore it instead of leaking
        modules into the process-wide default.
        """
        try:
            module = self._modules[stage].pop(name)
            self._generation += 1
            return module
        except KeyError:
            raise ModuleNotFoundInRegistry(
                f"no module {name!r} for stage {stage.value}; have "
                f"{sorted(self._modules[stage])}") from None

    def module(self, cls: type | None = None, *, replace: bool = False):
        """Class decorator: instantiate and register a module class.

        Usage::

            reg = ModuleRegistry()

            @reg.module
            class MySecondary(SecondaryModule):
                name = "my-codec"
                ...

        The class itself is returned (undecorated), so it stays usable and
        testable; the registry holds one instance.  Pass ``replace=True``
        to override an existing name: ``@reg.module(replace=True)``.
        """
        def deco(c: type) -> type:
            self.register(c(), replace=replace)
            return c
        if cls is None:
            return deco
        return deco(cls)

    def get(self, stage: Stage, name: str) -> Module:
        """Look a module up by stage and name (raises if absent)."""
        try:
            return self._modules[stage][name]
        except KeyError:
            raise ModuleNotFoundInRegistry(
                f"no module {name!r} for stage {stage.value}; have "
                f"{sorted(self._modules[stage])}") from None

    def names(self, stage: Stage) -> list[str]:
        """Registered module names for one stage, sorted."""
        return sorted(self._modules[stage])

    def catalog(self) -> dict[str, list[tuple[str, str]]]:
        """``{stage: [(name, description), ...]}`` for the CLI listing."""
        return {s.value: [(n, m.describe()) for n, m in sorted(t.items())]
                for s, t in self._modules.items()}


def _build_default() -> ModuleRegistry:
    reg = ModuleRegistry()
    for mod in (AbsEbPreprocess(), RelEbPreprocess(), PwRelPreprocess(),
                AbsAndRelPreprocess(), AutoTransposePreprocess(),
                LorenzoPredictor(), InterpPredictor(), RegressionPredictor(),
                StandardHistogram(), TopKHistogram(),
                HuffmanEncoder(), BitshuffleEncoder(), FixedLenEncoder(),
                ZstdLikeSecondary(), RleSecondary(), BitcompLikeSecondary(),
                NoSecondary()):
        reg.register(mod)
    return reg


#: The process-wide default registry with the standard module library.
DEFAULT_REGISTRY = _build_default()


def register(module: Module, *, replace: bool = False) -> Module:
    """Register a custom module into the default registry."""
    return DEFAULT_REGISTRY.register(module, replace=replace)


def unregister(stage: Stage, name: str) -> Module:
    """Remove a module from the default registry (returns it)."""
    return DEFAULT_REGISTRY.unregister(stage, name)


def get_module(stage: Stage, name: str) -> Module:
    """Look a module up in the process-wide default registry."""
    return DEFAULT_REGISTRY.get(stage, name)
