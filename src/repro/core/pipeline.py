"""Pipeline composition and execution (the heart of the framework).

A :class:`Pipeline` wires one module per stage into an error-bounded
compressor.  ``compress`` returns a :class:`CompressedField` — a
self-describing container blob plus the run's measured statistics (sizes,
per-stage wall time, code/outlier fractions) that the performance model and
the benches consume.  ``decompress`` works from the blob alone: the header
names the modules, which are looked up in the registry, so any process with
the same modules registered can decode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, DataError, PipelineError
from ..kernels.quantize import (OutlierSet, pack_outliers as quantize_pack,
                                unpack_outliers as quantize_unpack)
from ..kernels.plancache import MODULE_TABLE_CACHE
from ..obs.metrics import GLOBAL_METRICS
from ..obs.spans import span
from ..types import EbMode, ErrorBound, check_field
from .header import (ContainerHeader, as_bytes_view, assemble, parse,
                     peek_header, split_sections)
from .module import (EncodedStream, EncoderModule, PredictorArtifacts,
                     PredictorModule, PreprocessModule, SecondaryModule,
                     StatisticsModule)
from .modules_std import NoSecondary
from .registry import DEFAULT_REGISTRY, ModuleRegistry
from .spec import DEFAULT_RADIUS, PipelineSpec
from ..types import Stage


@dataclass(frozen=True)
class CompressionStats:
    """Measured statistics of one compression run."""

    input_bytes: int
    output_bytes: int
    element_count: int
    eb_abs: float
    code_fraction: float       # dense code stream bytes / input bytes
    outlier_fraction: float    # outlier channel bytes / input bytes
    outlier_count: int
    section_sizes: dict[str, int]
    stage_seconds: dict[str, float]
    interp_levels: int = 0

    @property
    def cr(self) -> float:
        return self.input_bytes / self.output_bytes

    @property
    def bit_rate(self) -> float:
        return self.output_bytes * 8.0 / self.element_count

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


@dataclass(frozen=True)
class CompressedField:
    """The output of :meth:`Pipeline.compress`."""

    blob: bytes
    stats: CompressionStats
    header: ContainerHeader

    @property
    def nbytes(self) -> int:
        return len(self.blob)


def _serialize_outliers(out: OutlierSet) -> tuple[dict[str, bytes], int]:
    idx, val, count = quantize_pack(out)
    sections: dict[str, bytes] = {}
    if count:
        sections["outlier.idx"] = idx
        sections["outlier.val"] = val
    return sections, count


def _deserialize_outliers(sections: dict[str, bytes], count: int) -> OutlierSet:
    return quantize_unpack(sections.get("outlier.idx", b""),
                           sections.get("outlier.val", b""), count)


class Pipeline:
    """An assembled compression pipeline (one module per stage)."""

    def __init__(self, *, preprocess: PreprocessModule,
                 predictor: PredictorModule, encoder: EncoderModule,
                 statistics: StatisticsModule | None = None,
                 secondary: SecondaryModule | None = None,
                 radius: int = DEFAULT_RADIUS, name: str = "custom") -> None:
        if encoder.needs_statistics and statistics is None:
            raise PipelineError(
                f"encoder {encoder.name!r} requires a statistics module")
        self.preprocess = preprocess
        self.predictor = predictor
        self.statistics = statistics
        self.encoder = encoder
        self.secondary = secondary if secondary is not None else NoSecondary()
        self.radius = int(radius)
        self.name = name

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: PipelineSpec,
                  registry: ModuleRegistry = DEFAULT_REGISTRY) -> "Pipeline":
        """Assemble a pipeline from its canonical description.

        This is the single construction path: ``from_names``, the fluent
        builder, the presets and header-driven decompression all reduce to
        a :class:`~repro.core.spec.PipelineSpec` handed here.  Encoders
        that need statistics but whose spec names none get the standard
        histogram, exactly as the paper's default constructor does.
        """
        enc = registry.get(Stage.ENCODER, spec.encoder)
        stats = (registry.get(Stage.STATISTICS, spec.statistics)
                 if spec.statistics is not None else None)
        if stats is None and getattr(enc, "needs_statistics", False):
            stats = registry.get(Stage.STATISTICS, "histogram")
        return cls(
            preprocess=registry.get(Stage.PREPROCESS, spec.preprocess),
            predictor=registry.get(Stage.PREDICTOR, spec.predictor),
            statistics=stats,
            encoder=enc,
            secondary=(registry.get(Stage.SECONDARY, spec.secondary)
                       if spec.secondary is not None else None),
            radius=spec.radius, name=spec.name)

    @classmethod
    def from_names(cls, *, preprocess: str = "rel-eb", predictor: str = "lorenzo",
                   encoder: str = "huffman", statistics: str | None = None,
                   secondary: str | None = None, radius: int = DEFAULT_RADIUS,
                   name: str = "custom",
                   registry: ModuleRegistry = DEFAULT_REGISTRY) -> "Pipeline":
        """Assemble a pipeline from registry names (delegates to
        :meth:`from_spec`)."""
        return cls.from_spec(
            PipelineSpec(preprocess=preprocess, predictor=predictor,
                         statistics=statistics, encoder=encoder,
                         secondary=secondary, radius=radius, name=name),
            registry=registry)

    @property
    def spec(self) -> PipelineSpec:
        """The effective canonical description of this pipeline.

        Derived from the assembled module instances, so defaults that
        were resolved at construction time (e.g. the histogram a Huffman
        encoder pulled in) appear explicitly — building
        ``Pipeline.from_spec(p.spec)`` reproduces ``p`` exactly.
        """
        return PipelineSpec(
            preprocess=self.preprocess.name,
            predictor=self.predictor.name,
            statistics=(self.statistics.name
                        if self.statistics is not None else None),
            encoder=self.encoder.name,
            secondary=self.secondary.name,
            radius=self.radius, name=self.name)

    @property
    def num_bins(self) -> int:
        return 2 * self.radius

    def module_names(self) -> dict[str, str]:
        """Stage -> module-name mapping stored in container headers."""
        names = {
            Stage.PREPROCESS.value: self.preprocess.name,
            Stage.PREDICTOR.value: self.predictor.name,
            Stage.ENCODER.value: self.encoder.name,
            Stage.SECONDARY.value: self.secondary.name,
        }
        if self.statistics is not None:
            names[Stage.STATISTICS.value] = self.statistics.name
        return names

    # ------------------------------------------------------------------ #
    def _resolve_plan(self, compile_mode):
        """Map a ``compile=`` argument to a plan (or ``None`` = interpret).

        ``"auto"`` uses the compiled plan when the spec compiles and
        falls back silently otherwise; ``True`` requires a plan (raises
        :class:`~repro.errors.PipelineError` naming the declining stage);
        ``False`` forces the interpreter.
        """
        if compile_mode is False:
            return None
        if compile_mode is not True and compile_mode != "auto":
            raise PipelineError(
                f"compile must be 'auto', True or False, got {compile_mode!r}")
        from ..compile import decline_reason, plan_for
        plan = plan_for(self)
        if plan is None and compile_mode is True:
            raise PipelineError(
                f"pipeline {self.name!r} cannot be compiled: "
                f"{decline_reason(self)}")
        return plan

    def compile(self):
        """The cached :class:`~repro.compile.CompiledPlan` for this pipeline.

        Raises :class:`~repro.errors.PipelineError` when the compiler
        declines a stage (use :func:`repro.compile.decline_reason` to ask
        why without raising).  Compiling is idempotent and content-cached,
        so calling this once per process pre-warms the plan cache for
        every engine.
        """
        plan = self._resolve_plan(True)
        assert plan is not None  # _resolve_plan(True) raised otherwise
        return plan

    def compress(self, data: np.ndarray, eb: ErrorBound | float,
                 mode: EbMode | str = EbMode.REL, *,
                 workers: int | None = None, shard_mb: float | None = None,
                 codebook: str | None = None, compile="auto",
                 threads: int | None = None):
        """Compress ``data`` under the given error bound.

        With ``workers`` or ``shard_mb`` set (``workers=1`` counts: it
        requests the engine with one worker), the field is split into
        shards and compressed concurrently by the parallel engine
        (:func:`repro.parallel.executor.compress_sharded`); the result is
        then a multi-shard container whose blob :func:`decompress` decodes
        like any other.  Sharding is deterministic: the blob is
        byte-identical for every worker count, so ``workers=4`` and
        ``workers=1`` decode to byte-identical fields.

        ``codebook`` (sharded runs only) selects the entropy-codebook
        scope: ``"per-shard"`` (default) builds one Huffman codebook per
        shard; ``"shared"`` builds a single global codebook from the
        combined histogram and ships it to every shard — one package-merge
        run instead of N, and one stored codebook instead of N.

        ``compile`` selects the execution path: ``"auto"`` (default) runs
        the fused compiled plan when :mod:`repro.compile` accepts the spec
        — output is byte-identical either way — and the interpreter
        otherwise; ``True`` requires the compiled path; ``False`` forces
        the interpreter.

        ``threads`` selects the compiled plan's slab-parallel width
        (``None`` resolves ``FZMOD_THREADS``, then auto-threads large
        inputs across the cores — see
        :func:`repro.runtime.threads.resolve_threads`); the container
        bytes are identical for every value.  The interpreter path runs
        single-threaded regardless.
        """
        if workers is not None or shard_mb is not None or codebook is not None:
            from ..parallel.executor import compress_sharded
            return compress_sharded(data, self, eb, mode, workers=workers,
                                    shard_mb=shard_mb, codebook=codebook,
                                    compile=compile)
        plan = self._resolve_plan(compile)
        if plan is not None:
            return plan.compress(data, eb, mode, threads=threads)
        if not isinstance(eb, ErrorBound):
            eb = ErrorBound(float(eb), EbMode(mode))
        data = check_field(data)
        timings: dict[str, float] = {}
        with span("pipeline.compress", pipeline=self.name,
                  bytes_in=int(data.nbytes)) as root:
            t0 = time.perf_counter()
            with span("stage.preprocess", module=self.preprocess.name,
                      bytes_in=int(data.nbytes)) as sp:
                pre = self.preprocess.forward(data, eb)
                sp.set(bytes_out=int(pre.data.nbytes))
            timings["preprocess"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with span("stage.predictor", module=self.predictor.name,
                      bytes_in=int(pre.data.nbytes)) as sp:
                arts = self.predictor.encode(pre.data, pre.eb_abs, self.radius)
                sp.set(bytes_out=int(arts.codes.nbytes))
            timings["predictor"] = time.perf_counter() - t0

            hist = None
            if self.encoder.needs_statistics:
                t0 = time.perf_counter()
                with span("stage.statistics", module=self.statistics.name,
                          bytes_in=int(arts.codes.nbytes)) as sp:
                    hist = self.statistics.collect(arts.codes, self.num_bins)
                    sp.set(bytes_out=int(hist.counts.nbytes))
                timings["statistics"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with span("stage.encoder", module=self.encoder.name,
                      bytes_in=int(arts.codes.nbytes)) as sp:
                stream = self.encoder.encode(arts.codes, self.num_bins, hist)
                sp.set(bytes_out=sum(len(v) for v in
                                     stream.sections.values()))
            timings["encoder"] = time.perf_counter() - t0

            sections: dict[str, bytes] = dict(stream.sections)
            outlier_sections, outlier_count = _serialize_outliers(arts.outliers)
            sections.update(outlier_sections)
            if arts.anchors is not None:
                sections["anchors"] = as_bytes_view(arts.anchors)
            aux_meta: dict[str, list] = {}
            for aname, arr in arts.aux.items():
                sections[f"aux.{aname}"] = as_bytes_view(arr)
                aux_meta[aname] = [arr.dtype.str, list(arr.shape)]

            header = ContainerHeader(
                shape=data.shape, dtype=data.dtype.str, eb_value=eb.value,
                eb_mode=eb.mode.value, eb_abs=pre.eb_abs, radius=self.radius,
                modules=self.module_names(), pipeline=self.spec.to_json(),
                stage_meta={"predictor": dict(arts.meta),
                            "encoder": dict(stream.meta),
                            "preprocess": dict(pre.meta),
                            "outliers": {"count": outlier_count},
                            "aux": aux_meta})
            _, body = assemble(header, sections)

            t0 = time.perf_counter()
            with span("stage.secondary", module=self.secondary.name,
                      bytes_in=len(body)) as sp:
                stored_body = self.secondary.encode(body)
                sp.set(bytes_out=len(stored_body))
            timings["secondary"] = time.perf_counter() - t0

            # rebuild the header with the CRC of the *stored* body so parse()
            # can reject corruption before any codec runs
            header_bytes, _ = assemble(header, sections, stored_body=stored_body)
            blob = header_bytes + stored_body
            root.set(bytes_out=len(blob))
        for stage, seconds in timings.items():
            GLOBAL_METRICS.histogram("pipeline.stage_seconds",
                                     stage=stage).observe(seconds)
        GLOBAL_METRICS.counter("pipeline.compress_calls").inc()
        GLOBAL_METRICS.counter("pipeline.bytes_in").inc(int(data.nbytes))
        GLOBAL_METRICS.counter("pipeline.bytes_out").inc(len(blob))
        stats = CompressionStats(
            input_bytes=data.nbytes, output_bytes=len(blob),
            element_count=data.size, eb_abs=pre.eb_abs,
            code_fraction=arts.codes.nbytes / data.nbytes,
            outlier_fraction=sum(len(v) for v in outlier_sections.values())
            / data.nbytes,
            outlier_count=arts.outliers.count,
            section_sizes={k: len(v) for k, v in sections.items()},
            stage_seconds=timings,
            interp_levels=int(arts.meta.get("max_level", 0)))
        return CompressedField(blob=blob, stats=stats, header=header)

    def decompress(self, blob: bytes | CompressedField, *,
                   out: np.ndarray | None = None,
                   compile="auto",
                   threads: int | None = None) -> np.ndarray:
        """Reconstruct a field compressed by (any) pipeline.

        ``out`` receives the field directly when given (and is
        returned).  ``compile`` selects the decode path: ``"auto"``
        (default) runs the fused compiled decode plan when the
        container's spec is accepted — output is value-identical either
        way — and the interpreter otherwise; ``True`` requires the
        compiled path; ``False`` forces the interpreter.  ``threads``
        selects the compiled decode's slab-parallel width
        (value-identical for every width).
        """
        if isinstance(blob, CompressedField):
            blob = blob.blob
        return decompress(blob, out=out, compile=compile, threads=threads)


def _module_table(header: ContainerHeader, registry: ModuleRegistry
                  ) -> dict[str, object]:
    """Resolve the header's stage->name map to module instances, cached.

    The table is a pure function of the registry contents and the name
    map, so it is served from the plan cache keyed by the registry
    identity + generation: decompressing a stream of same-pipeline
    containers resolves the modules once instead of five lookups per blob.
    """
    names = tuple(sorted(header.modules.items()))
    key = (id(registry), registry.generation, names)
    return MODULE_TABLE_CACHE.get_or_build(
        key, lambda: {stage: registry.get(Stage(stage), name)
                      for stage, name in names})


def decode_codes(blob: bytes, registry: ModuleRegistry = DEFAULT_REGISTRY,
                 *, section_overrides: dict[str, bytes] | None = None
                 ) -> tuple[ContainerHeader, PredictorArtifacts]:
    """The entropy half of container decoding.

    Parses the container, runs the secondary decode and the encoder's
    entropy decode (Huffman for the standard pipelines), and
    deserialises the outlier/anchor/aux channels — everything up to but
    excluding the predictor's reconstruction.  Returns the header plus
    the recovered :class:`PredictorArtifacts`, which
    :func:`reconstruct_field` turns back into a field.

    The split exists for the streaming engine: entropy decode of shard
    k+1 can run concurrently with the outlier scatter of shard k (the
    paper's §3.3.1 overlap), which needs the two halves as separately
    schedulable tasks.
    """
    header, stored_body = parse(blob)
    modules = _module_table(header, registry)
    secondary = modules[Stage.SECONDARY.value]
    with span("stage.secondary", module=secondary.name, op="decode",
              bytes_in=len(stored_body)) as sp:
        body = secondary.decode(stored_body)
        sp.set(bytes_out=len(body))
    sections = split_sections(header, body, zero_copy=True)
    if section_overrides:
        sections.update(section_overrides)

    encoder = modules[Stage.ENCODER.value]
    stream = EncodedStream(
        sections={k: v for k, v in sections.items()
                  if k.startswith("enc.")},
        meta=header.stage_meta.get("encoder", {}))
    # interp predictors carry anchors: the dense code stream is shorter
    # than the element count by the anchor count.  Predictors whose
    # stream length differs from the element count for other reasons
    # (e.g. the regression predictor's padded blocks) declare it
    # explicitly.
    anchors = None
    anchor_count = 0
    if "anchors" in sections:
        anchors = np.frombuffer(sections["anchors"], dtype=header.np_dtype)
        anchor_count = anchors.size
    predictor_meta = header.stage_meta.get("predictor", {})
    count = int(predictor_meta.get("stream_length",
                                   header.element_count - anchor_count))
    with span("stage.encoder", module=encoder.name, op="decode",
              bytes_in=sum(len(v) for v in stream.sections.values())) as sp:
        codes = encoder.decode(stream, count, 2 * header.radius)
        sp.set(bytes_out=int(codes.nbytes))

    outlier_count = int(header.stage_meta.get("outliers", {})
                        .get("count", 0))
    outliers = _deserialize_outliers(sections, outlier_count)
    aux: dict[str, np.ndarray] = {}
    for aname, (dtype_str, shape) in header.stage_meta.get("aux",
                                                           {}).items():
        arr = np.frombuffer(sections[f"aux.{aname}"],
                            dtype=np.dtype(dtype_str))
        aux[aname] = arr.reshape([int(s) for s in shape])
    arts = PredictorArtifacts(codes=codes, outliers=outliers,
                              anchors=anchors, aux=aux,
                              meta=header.stage_meta.get("predictor", {}))
    return header, arts


def reconstruct_field(header: ContainerHeader, arts: PredictorArtifacts,
                      registry: ModuleRegistry = DEFAULT_REGISTRY
                      ) -> np.ndarray:
    """The reconstruction half: predictor decode (outlier merge/scatter
    included) and the inverse preprocess, from :func:`decode_codes`
    artifacts back to the field."""
    modules = _module_table(header, registry)
    predictor = modules[Stage.PREDICTOR.value]
    with span("stage.predictor", module=predictor.name, op="decode",
              bytes_in=int(arts.codes.nbytes)) as sp:
        out = predictor.decode(arts, header.shape, header.np_dtype,
                               header.eb_abs, header.radius)
        sp.set(bytes_out=int(out.nbytes))
    preprocess = modules[Stage.PREPROCESS.value]
    with span("stage.preprocess", module=preprocess.name, op="decode",
              bytes_in=int(out.nbytes)) as sp:
        out = preprocess.backward(out,
                                  header.stage_meta.get("preprocess", {}))
        sp.set(bytes_out=int(out.nbytes))
    # Contract: callers get exactly one C-contiguous, writable array of
    # the header's dtype that owns its data.  The standard chain already
    # ends in a fresh buffer (audited: Lorenzo/interp dequantize into a
    # new array and the preprocessors pass it through), so these
    # normalisations only fire for custom modules that return
    # transposed/strided views, foreign dtypes, or views into
    # blob-backed sections.
    if out.dtype != header.np_dtype:
        out = out.astype(header.np_dtype)
    elif not out.flags.c_contiguous:
        out = np.ascontiguousarray(out)
    if not out.flags.writeable or out.base is not None:
        out = out.copy()
    return out


def check_decode_out(out: np.ndarray, shape: tuple[int, ...],
                     dtype: np.dtype) -> np.ndarray:
    """Validate a caller-supplied decompression ``out=`` buffer.

    Every decode engine funnels through this before writing: the buffer
    must be a writable ndarray (:class:`~repro.errors.ConfigError`
    otherwise) matching the container's geometry exactly
    (:class:`~repro.errors.DataError` names both shapes on mismatch).
    Returns ``out`` for chaining.
    """
    if not isinstance(out, np.ndarray) or not out.flags.writeable:
        raise ConfigError("out= for decompression must be a writable array")
    if tuple(out.shape) != tuple(shape) or out.dtype != np.dtype(dtype):
        raise DataError(
            f"out= has shape {tuple(out.shape)}/{out.dtype}, container "
            f"holds {tuple(shape)}/{np.dtype(dtype)}")
    return out


def _decode_plan_for_mode(header: ContainerHeader, registry: ModuleRegistry,
                          compile_mode):
    """Map a decode ``compile=`` argument to a plan (``None`` = interpret).

    ``"auto"`` uses the compiled decode plan when the header's spec
    compiles and falls back silently otherwise; ``True`` requires a plan
    (raises :class:`~repro.errors.PipelineError` naming the obstacle);
    ``False`` forces the interpreter.
    """
    if compile_mode is False:
        return None
    if compile_mode is not True and compile_mode != "auto":
        raise PipelineError(
            f"compile must be 'auto', True or False, got {compile_mode!r}")
    from ..compile import decode_decline_reason, decode_plan_for_header
    plan = decode_plan_for_header(header, registry)
    if plan is None and compile_mode is True:
        spec = header.pipeline_spec()
        if spec is None:
            raise PipelineError(
                "container carries no pipeline spec; compiled decode "
                "requires one")
        pipeline = Pipeline.from_spec(spec, registry=registry)
        raise PipelineError(
            f"pipeline {pipeline.name!r} cannot be compile-decoded: "
            f"{decode_decline_reason(pipeline)}")
    return plan


def decompress(blob: bytes, registry: ModuleRegistry = DEFAULT_REGISTRY,
               *, workers: int | None = None,
               section_overrides: dict[str, bytes] | None = None,
               compile="auto", out: np.ndarray | None = None,
               threads: int | None = None) -> np.ndarray:
    """Container-driven decompression: module names come from the header.

    Multi-shard containers (written by the parallel engine) are detected
    by magic and decoded shard-parallel; ``workers`` bounds that pool and
    is ignored for ordinary single-shard containers.

    ``section_overrides`` merges extra named sections over the container's
    own after the body is split — the parallel engine uses it to inject
    the shared codebook into shard containers that deliberately omit it.

    ``compile`` selects the decode path (``"auto"``/``True``/``False``,
    see :meth:`Pipeline.decompress`) and ``out`` receives the field
    directly when given — the compiled path dequantises straight into
    it, the interpreter copies into it — and is returned.  ``threads``
    selects the compiled decode's slab-parallel width (ignored by the
    interpreter; values identical for every width).
    """
    from ..parallel.executor import SHARD_MAGIC, decompress_sharded
    if blob[:len(SHARD_MAGIC)] == SHARD_MAGIC:
        return decompress_sharded(blob, workers=workers, registry=registry,
                                  compile=compile, out=out)
    plan = None
    if compile is not False or out is not None:
        header = peek_header(blob)
        if out is not None:
            check_decode_out(out, header.shape, header.np_dtype)
        plan = _decode_plan_for_mode(header, registry, compile)
    if plan is not None:
        return plan.decompress(blob, out=out,
                               section_overrides=section_overrides,
                               threads=threads)
    with span("pipeline.decompress", bytes_in=len(blob)) as root:
        header, arts = decode_codes(blob, registry,
                                    section_overrides=section_overrides)
        field = reconstruct_field(header, arts, registry)
        if out is not None:
            out[...] = field
            field = out
        root.set(bytes_out=int(field.nbytes))
    GLOBAL_METRICS.counter("pipeline.decompress_calls").inc()
    return field
