"""Tiled compression with region-of-interest decompression.

The paper's motivating workflows are *post hoc analysis* of extreme-scale
snapshots: analysts rarely need a whole 512³ field — they cut planes,
track halos, zoom into a vortex.  Tiling makes that cheap: the field is
split into fixed tiles, each compressed as an independent container, so

* tiles decompress in parallel (and, on a real node, on different GPUs);
* a region read touches only the tiles overlapping the request;
* per-tile error bounds are still global (the bound is resolved against
  the *full* field's range first, so REL semantics match the untiled
  pipeline).

The tile set is carried in an :class:`~repro.core.archive.Archive`, so the
on-disk format reuses the snapshot container machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, HeaderError
from ..types import EbMode, ErrorBound, check_field
from .archive import Archive, ArchiveWriter
from .pipeline import Pipeline

_META_KEY = "__tiling__"


@dataclass(frozen=True)
class TileGrid:
    """Geometry of a tiling."""

    shape: tuple[int, ...]
    tile: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shape) != len(self.tile):
            raise ConfigError("tile rank must match field rank")
        if any(t < 1 for t in self.tile):
            raise ConfigError("tile sides must be >= 1")

    @property
    def counts(self) -> tuple[int, ...]:
        return tuple(-(-n // t) for n, t in zip(self.shape, self.tile))

    def tiles(self):
        """Yield ``(index_tuple, slices)`` for every tile."""
        for idx in itertools.product(*[range(c) for c in self.counts]):
            yield idx, tuple(
                slice(i * t, min((i + 1) * t, n))
                for i, t, n in zip(idx, self.tile, self.shape))

    def tiles_overlapping(self, region: tuple[slice, ...]):
        """Yield the tiles intersecting ``region`` (plain slices, no
        steps)."""
        if len(region) != len(self.shape):
            raise ConfigError("region rank must match field rank")
        ranges = []
        for sl, n, t in zip(region, self.shape, self.tile):
            start, stop, step = sl.indices(n)
            if step != 1:
                raise ConfigError("region slices must have step 1")
            if stop <= start:
                return
            ranges.append(range(start // t, (stop - 1) // t + 1))
        for idx in itertools.product(*ranges):
            yield idx, tuple(
                slice(i * t, min((i + 1) * t, n))
                for i, t, n in zip(idx, self.tile, self.shape))


def _tile_name(idx: tuple[int, ...]) -> str:
    return "tile_" + "_".join(str(i) for i in idx)


def compress_tiled(data: np.ndarray, pipeline: Pipeline,
                   eb: ErrorBound | float, tile: tuple[int, ...],
                   mode: EbMode | str = EbMode.REL) -> bytes:
    """Compress ``data`` as independent tiles; returns the archive bytes.

    REL bounds are resolved against the *global* range before tiling, so
    the reconstruction contract equals the untiled pipeline's.
    """
    data = check_field(data)
    if not isinstance(eb, ErrorBound):
        eb = ErrorBound(float(eb), EbMode(mode))
    if eb.mode is EbMode.REL:
        eb_abs = eb.absolute(float(data.min()), float(data.max()))
        eb = ErrorBound(eb_abs, EbMode.ABS)
    grid = TileGrid(shape=data.shape, tile=tuple(int(t) for t in tile))
    writer = ArchiveWriter()
    for idx, slices in grid.tiles():
        writer.add(_tile_name(idx), np.ascontiguousarray(data[slices]),
                   eb, pipeline, mode=EbMode.ABS)
    # stash the tiling geometry in a zero-length marker entry's name space:
    # the archive index is JSON, so encode geometry in a reserved member
    meta = np.asarray(list(data.shape) + list(grid.tile), dtype=np.int64)
    writer.add_compressed(_META_KEY, _meta_container(meta, data.dtype.str),
                          pipeline_name="tiling-meta")
    return writer.to_bytes()


def _meta_container(meta: np.ndarray, dtype_str: str):
    """Wrap the tiling geometry as a (trivial) container so it rides in
    the archive like any member."""
    from .header import ContainerHeader, assemble
    from .pipeline import CompressedField, CompressionStats
    sections = {"geom": meta.tobytes()}
    header = ContainerHeader(
        shape=(meta.size,), dtype="<i8", eb_value=1.0, eb_mode="abs",
        eb_abs=1.0, radius=0, modules={"baseline": "tiling-meta"},
        stage_meta={"baseline": {"field_dtype": dtype_str}})
    header_bytes, body = assemble(header, sections)
    blob = header_bytes + body
    stats = CompressionStats(
        input_bytes=meta.nbytes, output_bytes=len(blob),
        element_count=meta.size, eb_abs=1.0, code_fraction=0.0,
        outlier_fraction=0.0, outlier_count=0,
        section_sizes={"geom": meta.nbytes}, stage_seconds={})
    return CompressedField(blob=blob, stats=stats, header=header)


class TiledField:
    """Read-side view of a tiled compression (lazy, region-aware)."""

    def __init__(self, blob: bytes) -> None:
        self.archive = Archive(blob)
        if _META_KEY not in self.archive.names():
            raise HeaderError("archive is not a tiled field (missing "
                              "tiling metadata member)")
        from .header import parse, split_sections
        header, body = parse(self.archive.raw_blob(_META_KEY))
        geom = np.frombuffer(split_sections(header, body)["geom"],
                             dtype=np.int64)
        ndim = geom.size // 2
        self.grid = TileGrid(shape=tuple(int(x) for x in geom[:ndim]),
                             tile=tuple(int(x) for x in geom[ndim:]))
        self.dtype = np.dtype(header.stage_meta["baseline"]["field_dtype"])

    @property
    def shape(self) -> tuple[int, ...]:
        return self.grid.shape

    @property
    def tile_count(self) -> int:
        return int(np.prod(self.grid.counts))

    def read_tile(self, idx: tuple[int, ...]) -> np.ndarray:
        """Decompress exactly one tile by its grid index."""
        return self.archive.read(_tile_name(idx))

    def read_region(self, region: tuple[slice, ...]) -> np.ndarray:
        """Decompress only the tiles overlapping ``region``."""
        shapes = [sl.indices(n) for sl, n in zip(region, self.grid.shape)]
        out_shape = tuple(stop - start for start, stop, _ in shapes)
        if any(s <= 0 for s in out_shape):
            raise ConfigError("empty region")
        out = np.empty(out_shape, dtype=self.dtype)
        offsets = tuple(start for start, _, _ in shapes)
        hit = False
        for idx, slices in self.grid.tiles_overlapping(region):
            hit = True
            tile_data = self.read_tile(idx)
            # intersection of the tile with the region, in both frames
            dst = []
            src = []
            for (t_sl, off, (r_start, r_stop, _)) in zip(slices, offsets,
                                                         shapes):
                lo = max(t_sl.start, r_start)
                hi = min(t_sl.stop, r_stop)
                dst.append(slice(lo - off, hi - off))
                src.append(slice(lo - t_sl.start, hi - t_sl.start))
            out[tuple(dst)] = tile_data[tuple(src)]
        if not hit:
            raise ConfigError("region overlaps no tiles")
        return out

    def read_full(self) -> np.ndarray:
        """Reassemble the whole field."""
        return self.read_region(tuple(slice(0, n) for n in self.grid.shape))

    def tiles_touched(self, region: tuple[slice, ...]) -> int:
        """How many tiles a region read would decompress."""
        return sum(1 for _ in self.grid.tiles_overlapping(region))
