"""Extended module library (§5: "expand the supported GPU and CPU modules").

Beyond the paper's shipped set, these modules cover the adjacent design
space its related-work section draws on:

* ``pwr-eb`` — point-wise *relative* error bounds via a log-domain
  transform (the eb mode SZ/FZ tools call PW_REL);
* ``regression`` — SZ3-style per-block linear regression predictor;
* ``fixedlen`` — cuSZp2-style per-block fixed-length encoder as a primary
  codec module (so a "cuSZp2-like" pipeline is composable inside the
  framework);
* ``bitcomp-like`` — a paged secondary lossless codec in the role cuSZ-i
  uses NVIDIA Bitcomp for (per-page best-of stored/RLE/Huffman, random
  access preserved at page granularity).
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError, ConfigError
from ..kernels import bitshuffle as bs
from ..kernels import fixedlen as fl
from ..kernels import huffman
from ..kernels import lorenzo as klorenzo
from ..kernels import lz77
from ..kernels import quantize as q
from ..kernels import rle
from ..kernels.histogram import HistogramResult
from ..types import EbMode, ErrorBound
from .module import (EncodedStream, EncoderModule, PredictorArtifacts,
                     PredictorModule, PreprocessModule, PreprocessResult,
                     SecondaryModule)


# ---------------------------------------------------------------------- #
# point-wise relative bounds                                              #
# ---------------------------------------------------------------------- #
class PwRelPreprocess(PreprocessModule):
    """Point-wise relative error bounds via a log transform.

    For strictly positive data, bounding the *absolute* error of
    ``log(x)`` by ``log(1 + eb)`` guarantees a point-wise relative bound:
    ``|x' / x - 1| <= eb`` for every value.  This is how SZ-family tools
    implement their PW_REL mode, and it is the natural mode for fields
    with huge dynamic range (Nyx baryon density).
    """

    name = "pwr-eb"

    def forward(self, data: np.ndarray, eb: ErrorBound) -> PreprocessResult:
        if float(data.min()) <= 0.0:
            raise ConfigError("pwr-eb requires strictly positive data "
                              "(log-domain transform)")
        if eb.value >= 1.0:
            raise ConfigError("point-wise relative bound must be < 1")
        transformed = np.log(data.astype(np.float64)).astype(data.dtype)
        eb_abs = float(np.log1p(eb.value))
        return PreprocessResult(data=transformed, eb_abs=eb_abs,
                                meta={"mode": "pwr", "transform": "log"})

    def backward(self, data: np.ndarray, meta: dict) -> np.ndarray:
        if meta.get("transform") != "log":  # pragma: no cover - guard
            raise CodecError("pwr-eb container missing transform marker")
        return np.exp(data.astype(np.float64)).astype(data.dtype)


class AbsAndRelPreprocess(PreprocessModule):
    """Combined bound: the effective tolerance is the *tighter* of an
    absolute bound and a value-range-relative bound.

    SZ-family tools call this ABS_AND_REL: "never worse than eb_abs, and
    never worse than eb_rel of the range".  The module interprets the
    user bound value as the relative part and takes ``abs_cap`` at
    construction for the absolute part.
    """

    name = "abs-and-rel"

    def __init__(self, abs_cap: float = np.inf) -> None:
        if abs_cap <= 0:
            raise ConfigError("abs_cap must be positive")
        self.abs_cap = float(abs_cap)

    def forward(self, data: np.ndarray, eb: ErrorBound) -> PreprocessResult:
        lo, hi = float(data.min()), float(data.max())
        rel_abs = ErrorBound(eb.value, EbMode.REL).absolute(lo, hi)
        eb_abs = min(rel_abs, self.abs_cap)
        return PreprocessResult(data=data, eb_abs=eb_abs,
                                meta={"mode": "abs-and-rel", "min": lo,
                                      "max": hi, "abs_cap": self.abs_cap})


# ---------------------------------------------------------------------- #
# regression predictor                                                    #
# ---------------------------------------------------------------------- #
class RegressionPredictor(PredictorModule):
    """SZ3-style block-wise linear-regression predictor.

    The field is cut into fixed blocks (edge blocks are padded by
    replication); each block is fitted with a first-order model
    ``f(i) = c0 + sum_a c_a * i_a`` via one batched matrix product with the
    precomputed pseudo-inverse of the (shared) design matrix.  The fitted
    coefficients are themselves quantised — the decoder must use exactly
    the coefficients the encoder used — and shipped as an aux stream;
    residuals go through the shared error-controlled quantiser.

    Strong on locally-linear data (ramps, gradients); weaker than
    interpolation on curved smooth fields — which is why SZ3 *selects*
    between them per block.
    """

    name = "regression"

    def __init__(self, block: int = 4) -> None:
        if block < 2:
            raise ConfigError("regression block must be >= 2")
        self.block = block

    # -- shared geometry helpers ------------------------------------------
    def _design(self, ndim: int) -> tuple[np.ndarray, np.ndarray]:
        """Design matrix X (block^ndim x (ndim+1)) and its pseudo-inverse."""
        b = self.block
        grids = np.meshgrid(*[np.arange(b)] * ndim, indexing="ij")
        cols = [np.ones(b ** ndim)] + [g.reshape(-1).astype(np.float64)
                                       for g in grids]
        X = np.stack(cols, axis=1)
        return X, np.linalg.pinv(X)

    def _blockify(self, data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        """Pad to block multiples (edge replication) and reshape to
        (nblocks, block**ndim)."""
        b = self.block
        pads = [(0, (-n) % b) for n in data.shape]
        padded = np.pad(data, pads, mode="edge")
        nb = [n // b for n in padded.shape]
        # split each axis into (outer, block)
        shape = []
        for n_out in nb:
            shape.extend([n_out, b])
        arr = padded.reshape(shape)
        # bring all outer axes first, then all block axes
        ndim = data.ndim
        order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
        arr = arr.transpose(order).reshape(int(np.prod(nb)), b ** ndim)
        return arr, tuple(padded.shape)

    def _unblockify(self, blocks: np.ndarray, padded_shape: tuple[int, ...],
                    shape: tuple[int, ...]) -> np.ndarray:
        b = self.block
        nb = [n // b for n in padded_shape]
        ndim = len(shape)
        arr = blocks.reshape(nb + [b] * ndim)
        # inverse of the transpose in _blockify
        order = []
        for i in range(ndim):
            order.extend([i, ndim + i])
        arr = arr.transpose(order).reshape(padded_shape)
        return arr[tuple(slice(0, n) for n in shape)]

    # -- codec --------------------------------------------------------------
    def encode(self, data: np.ndarray, eb_abs: float, radius: int
               ) -> PredictorArtifacts:
        work = data.astype(np.float64)
        blocks, padded_shape = self._blockify(work)
        _, pinv = self._design(data.ndim)
        coeffs = blocks @ pinv.T                        # (nblocks, ndim+1)
        # coefficient quantisation: intercept at eb, slopes at 2*eb/block
        quanta = np.array([eb_abs] + [2.0 * eb_abs / self.block] * data.ndim)
        coeff_codes = np.rint(coeffs / quanta).astype(np.int64)
        coeffs_q = coeff_codes * quanta
        X, _ = self._design(data.ndim)
        pred = coeffs_q @ X.T                           # (nblocks, block^d)
        scaled = (blocks - pred) / (2.0 * eb_abs)
        if scaled.size and float(np.abs(scaled).max()) >= 2**62:
            raise CodecError("error bound too tight for regression codes")
        codes64 = np.rint(scaled).astype(np.int64)
        dense, outliers = q.split_outliers(codes64.reshape(-1), radius)
        return PredictorArtifacts(
            codes=dense, outliers=outliers,
            aux={"coeffs": coeff_codes.astype(np.int32)},
            meta={"block": self.block,
                  "padded_shape": list(padded_shape),
                  # edge blocks are padded, so the code stream is longer
                  # than the element count; the container needs to know
                  "stream_length": int(dense.size)})

    def decode(self, artifacts: PredictorArtifacts, shape: tuple[int, ...],
               dtype: np.dtype, eb_abs: float, radius: int) -> np.ndarray:
        block = int(artifacts.meta["block"])
        if block != self.block:
            # the registry instance may use a different default; honour the
            # container's block size
            self = RegressionPredictor(block=block)
        padded_shape = tuple(int(x) for x in artifacts.meta["padded_shape"])
        ndim = len(shape)
        coeff_codes = artifacts.aux["coeffs"].astype(np.float64)
        quanta = np.array([eb_abs] + [2.0 * eb_abs / block] * ndim)
        coeffs_q = coeff_codes * quanta
        X, _ = self._design(ndim)
        pred = coeffs_q @ X.T
        codes64 = q.merge_outliers(artifacts.codes, artifacts.outliers,
                                   radius)
        recon_blocks = pred + codes64.reshape(pred.shape) * (2.0 * eb_abs)
        out = self._unblockify(recon_blocks, padded_shape, shape)
        return out.astype(dtype)


class AutoTransposePreprocess(PreprocessModule):
    """Axis-reordering preprocessor (the SZ dimension-ordering trick).

    Prediction quality depends on which axis is fastest-varying in memory;
    simulation output is often written with the smooth axis first.  This
    module samples the mean absolute first difference along every axis and
    transposes the field so the *smoothest* axis comes last (contiguous),
    recording the permutation for the backward pass.  Bound semantics are
    value-range relative, as for ``rel-eb`` (a transpose changes no
    values).
    """

    name = "auto-transpose"

    def forward(self, data: np.ndarray, eb: ErrorBound) -> PreprocessResult:
        lo, hi = float(data.min()), float(data.max())
        if data.ndim == 1:
            perm = (0,)
            out = data
        else:
            rough = [float(np.abs(np.diff(data, axis=a)).mean())
                     if data.shape[a] > 1 else np.inf
                     for a in range(data.ndim)]
            # roughest axes first, smoothest last
            perm = tuple(int(a) for a in np.argsort(rough)[::-1])
            out = np.ascontiguousarray(data.transpose(perm))
        return PreprocessResult(data=out, eb_abs=eb.absolute(lo, hi),
                                meta={"mode": eb.mode.value,
                                      "perm": list(perm)})

    def backward(self, data: np.ndarray, meta: dict) -> np.ndarray:
        perm = [int(p) for p in meta.get("perm", range(data.ndim))]
        inverse = np.argsort(perm)
        return np.ascontiguousarray(data.transpose(inverse))


# ---------------------------------------------------------------------- #
# fixed-length encoder module                                             #
# ---------------------------------------------------------------------- #
class FixedLenEncoder(EncoderModule):
    """cuSZp2-style per-block fixed-length primary codec.

    Recentres the unsigned quant codes, zigzag-maps them, and packs each
    32-value block at its own bit width.  No entropy coding, no global
    statistics — the throughput-first choice, composable with any
    predictor."""

    name = "fixedlen"
    needs_statistics = False

    def __init__(self, block: int = fl.BLOCK_VALUES) -> None:
        self.block = block

    def encode(self, codes: np.ndarray, num_bins: int,
               hist: HistogramResult | None) -> EncodedStream:
        radius = num_bins // 2
        zz = bs.zigzag(codes.astype(np.int64) - radius)
        enc = fl.encode(zz.astype(np.uint32), block=self.block)
        return EncodedStream(
            sections={"enc.widths": enc.widths, "enc.payload": enc.payload},
            meta={"count": enc.count, "block": enc.block})

    def decode(self, stream: EncodedStream, count: int, num_bins: int
               ) -> np.ndarray:
        enc = fl.FixedLenEncoded(widths=stream.sections["enc.widths"],
                                 payload=stream.sections["enc.payload"],
                                 count=int(stream.meta["count"]),
                                 block=int(stream.meta["block"]))
        zz = fl.decode(enc)
        signed = bs.unzigzag(zz.astype(np.uint64))
        out = signed + num_bins // 2
        if out.size != count:
            raise CodecError("fixedlen decode count mismatch")
        if out.size and (int(out.min()) < 0 or int(out.max()) >= num_bins):
            raise CodecError("fixedlen decode produced out-of-range code")
        return out.astype(np.uint16 if num_bins <= 65536 else np.uint32)


# ---------------------------------------------------------------------- #
# paged secondary (Bitcomp-role)                                          #
# ---------------------------------------------------------------------- #
class BitcompLikeSecondary(SecondaryModule):
    """Paged lossless secondary codec (the NVIDIA-Bitcomp role in cuSZ-i).

    The body is cut into fixed pages; each page independently picks the
    smallest of {stored, RLE, LZ77, byte-Huffman}.  Page independence is the
    property the hardware codec trades ratio for (parallel decode, random
    access); here it also bounds worst-case expansion to the page table.
    """

    name = "bitcomp-like"

    _STORED, _RLE, _HUFF, _LZ77 = 0, 1, 2, 3

    def __init__(self, page: int = 1 << 14) -> None:
        if page < 64:
            raise ConfigError("page size must be >= 64 bytes")
        self.page = page

    def _encode_page(self, page: bytes) -> tuple[int, bytes]:
        best_mode, best = self._STORED, page
        r = rle.encode(page)
        if len(r) < len(best):
            best_mode, best = self._RLE, r
        z = lz77.encode(page)
        if len(z) < len(best):
            best_mode, best = self._LZ77, z
        buf = np.frombuffer(page, dtype=np.uint8)
        counts = np.bincount(buf, minlength=256)
        try:
            book = huffman.build_codebook(counts)
            enc = huffman.encode(buf, book)
            blob = (struct.pack("<IQ", enc.count, len(enc.payload))
                    + enc.lengths.tobytes()
                    + struct.pack("<q", int(enc.chunk_bits[0]))
                    + enc.payload)
            if len(blob) < len(best):
                best_mode, best = self._HUFF, blob
        except CodecError:  # pragma: no cover - empty page guard
            pass
        return best_mode, best

    def _decode_page(self, mode: int, blob: bytes) -> bytes:
        if mode == self._STORED:
            return blob
        if mode == self._RLE:
            return rle.decode(blob)
        if mode == self._LZ77:
            return lz77.decode(blob)
        if mode == self._HUFF:
            count, plen = struct.unpack_from("<IQ", blob, 0)
            off = struct.calcsize("<IQ")
            lengths = np.frombuffer(blob, dtype=np.uint8, count=256,
                                    offset=off)
            off += 256
            (nbits,) = struct.unpack_from("<q", blob, off)
            off += 8
            enc = huffman.HuffmanEncoded(
                payload=blob[off:off + plen],
                chunk_symbols=np.asarray([count], dtype=np.int64),
                chunk_bits=np.asarray([nbits], dtype=np.int64),
                count=count, lengths=lengths,
                max_len=huffman.DEFAULT_MAX_LEN)
            return huffman.decode(enc).astype(np.uint8).tobytes()
        raise CodecError(f"unknown page mode {mode}")

    def encode(self, body: bytes) -> bytes:
        pages = [body[i:i + self.page] for i in range(0, len(body), self.page)]
        out = [struct.pack("<QII", len(body), self.page, len(pages))]
        payloads = []
        for page in pages:
            mode, blob = self._encode_page(page)
            out.append(struct.pack("<BI", mode, len(blob)))
            payloads.append(blob)
        return b"".join(out + payloads)

    def decode(self, body: bytes) -> bytes:
        if len(body) < struct.calcsize("<QII"):
            raise CodecError("bitcomp-like container too short")
        total, page, npages = struct.unpack_from("<QII", body, 0)
        off = struct.calcsize("<QII")
        table = []
        for _ in range(npages):
            mode, length = struct.unpack_from("<BI", body, off)
            off += struct.calcsize("<BI")
            table.append((mode, length))
        out = []
        for mode, length in table:
            blob = body[off:off + length]
            if len(blob) != length:
                raise CodecError("bitcomp-like page truncated")
            off += length
            out.append(self._decode_page(mode, blob))
        result = b"".join(out)
        if len(result) != total:
            raise CodecError("bitcomp-like length mismatch")
        return result
