"""Pipeline verification harness.

The framework exists so people can "rapidly build **and test**" custom
pipelines (§1, §5).  This module is the *test* half as a one-call API: it
throws a structured battery of checks at any pipeline — including ones
containing user-written modules — and returns a pass/fail report per
check, so a module author knows immediately whether their stage breaks a
contract.

Checks
------
``bound``          reconstruction error within the bound on every probe
                   field (smooth / noisy / spiky / constant / 1-3D,
                   f4 + f8)
``determinism``    identical bytes for identical inputs
``container``      header parses, module names resolve, generic
                   ``decompress`` works from the blob alone
``corruption``     flipped bytes are rejected loudly
``monotonicity``   tighter bounds never lower PSNR
``no_expansion``   compressible probes don't expand
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FZModError
from ..metrics.quality import psnr, verify_error_bound
from .pipeline import Pipeline, decompress


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named check."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All check outcomes for one pipeline."""

    pipeline: str
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failures(self) -> list[CheckResult]:
        """The checks that did not pass."""
        return [c for c in self.checks if not c.passed]

    def table(self) -> str:
        """Render the check outcomes as text."""
        lines = [f"verification of pipeline {self.pipeline!r}:"]
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name:<14} {c.detail}")
        return "\n".join(lines)


def _probe_fields(seed: int = 0) -> list[tuple[str, np.ndarray]]:
    rng = np.random.default_rng(seed)
    # large enough that fixed codec overheads (codebooks, chunk tables)
    # don't mask a module's true behaviour
    smooth = np.cumsum(rng.standard_normal((64, 80)), axis=0)
    spiky = rng.standard_normal(3000) * 0.01
    spiky[rng.integers(0, 3000, 20)] = 1e4
    probes = [
        ("smooth-2d-f4", smooth.astype(np.float32)),
        ("smooth-2d-f8", smooth.astype(np.float64)),
        ("noisy-3d", rng.standard_normal((8, 10, 12)).astype(np.float32)),
        ("spiky-1d", spiky.astype(np.float32)),
        ("constant", np.full((9, 9), 2.5, dtype=np.float32)),
        ("tiny", np.asarray([1.0, 2.0, 3.0], dtype=np.float32)),
    ]
    return probes


def verify_pipeline(pipeline: Pipeline, ebs: tuple[float, ...] = (1e-2, 1e-4),
                    seed: int = 0) -> VerificationReport:
    """Run the full check battery against ``pipeline``."""
    report = VerificationReport(pipeline=pipeline.name)
    probes = _probe_fields(seed)

    # bound + container + no-expansion, per probe x eb
    bound_ok, container_ok, expand_ok = True, True, True
    detail_bound, detail_container, detail_expand = "", "", ""
    for pname, data in probes:
        rng_v = float(data.max() - data.min())
        for eb in ebs:
            try:
                cf = pipeline.compress(data, eb)
                recon = decompress(cf.blob)
            except FZModError as exc:
                bound_ok = False
                detail_bound = f"{pname}@{eb:g}: raised {exc!r}"
                continue
            eb_abs = eb * rng_v if rng_v > 0 else eb
            if not verify_error_bound(data, recon, eb_abs):
                bound_ok = False
                detail_bound = f"{pname}@{eb:g}: bound violated"
            if recon.shape != data.shape or recon.dtype != data.dtype:
                container_ok = False
                detail_container = f"{pname}: geometry not restored"
            if (pname.startswith("smooth") and eb == max(ebs)
                    and cf.stats.cr <= 1.0):
                expand_ok = False
                detail_expand = f"{pname}@{eb:g}: CR {cf.stats.cr:.2f} <= 1"
    report.checks.append(CheckResult("bound", bound_ok, detail_bound))
    report.checks.append(CheckResult("container", container_ok,
                                     detail_container))
    report.checks.append(CheckResult("no_expansion", expand_ok,
                                     detail_expand))

    # determinism
    data = probes[0][1]
    try:
        det = (pipeline.compress(data, ebs[0]).blob
               == pipeline.compress(data, ebs[0]).blob)
        report.checks.append(CheckResult(
            "determinism", det, "" if det else "bytes differ across runs"))
    except FZModError as exc:
        report.checks.append(CheckResult("determinism", False, repr(exc)))

    # corruption rejection (three byte positions)
    try:
        blob = bytearray(pipeline.compress(data, ebs[0]).blob)
        loud = True
        for pos in (5, len(blob) // 2, len(blob) - 2):
            bad = bytearray(blob)
            bad[pos] ^= 0xA5
            try:
                decompress(bytes(bad))
                loud = False
            except FZModError:
                pass
        report.checks.append(CheckResult(
            "corruption", loud,
            "" if loud else "a corrupted blob decoded without error"))
    except FZModError as exc:  # pragma: no cover - compress failed earlier
        report.checks.append(CheckResult("corruption", False, repr(exc)))

    # monotonicity
    try:
        qs = []
        for eb in sorted(ebs, reverse=True):
            cf = pipeline.compress(data, eb)
            qs.append(psnr(data, decompress(cf.blob)))
        mono = all(b >= a - 1e-9 for a, b in zip(qs, qs[1:]))
        report.checks.append(CheckResult(
            "monotonicity", mono,
            "" if mono else f"PSNR not monotone across bounds: {qs}"))
    except FZModError as exc:
        report.checks.append(CheckResult("monotonicity", False, repr(exc)))

    return report
