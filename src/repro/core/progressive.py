"""Progressive (multi-fidelity) compression and retrieval.

HPDR — the framework the paper's related work positions against — centres
on *progressive* data retrieval: store once, read back at whatever
fidelity the consumer needs, paying bytes proportional to fidelity.  This
module adds that capability on top of any spatial pipeline with a
closed-loop residual cascade:

* level 0 compresses the field at the loosest bound ``eb0``;
* level k compresses the *residual* against the level-(k-1) reconstruction
  at bound ``eb0 / ratio**k``;
* a reader fetches levels 0..k and sums the reconstructions, getting a
  field accurate to ``eb0 / ratio**k`` — without touching the remaining
  levels.

Because each level's residual is bounded by the previous level's bound,
residual magnitudes shrink geometrically and the refinement levels are
cheap (high CR), so "store every fidelity" costs only modestly more than
storing the tightest fidelity alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, HeaderError
from ..types import EbMode, ErrorBound, check_field
from .archive import Archive, ArchiveWriter
from .pipeline import Pipeline, decompress


def _level_name(k: int) -> str:
    return f"level_{k:02d}"


@dataclass(frozen=True)
class ProgressiveStats:
    """Accounting of a progressive container."""

    levels: int
    eb_abs_per_level: tuple[float, ...]
    bytes_per_level: tuple[int, ...]
    input_bytes: int

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_per_level)

    def cr_to_level(self, k: int) -> float:
        """CR of reading levels 0..k."""
        return self.input_bytes / sum(self.bytes_per_level[:k + 1])


def compress_progressive(data: np.ndarray, pipeline: Pipeline,
                         eb0: ErrorBound | float, levels: int = 3,
                         ratio: float = 10.0,
                         mode: EbMode | str = EbMode.REL
                         ) -> tuple[bytes, ProgressiveStats]:
    """Build a progressive container with ``levels`` fidelity levels.

    Returns ``(blob, stats)``.  Level k is accurate to
    ``eb0_abs / ratio**k``.
    """
    if levels < 1:
        raise ConfigError("need at least one level")
    if ratio <= 1.0:
        raise ConfigError("ratio must be > 1 (each level must refine)")
    data = check_field(data)
    if not isinstance(eb0, ErrorBound):
        eb0 = ErrorBound(float(eb0), EbMode(mode))
    eb_abs0 = eb0.absolute(float(data.min()), float(data.max()))

    writer = ArchiveWriter()
    work = data.astype(np.float64)
    recon = np.zeros_like(work)
    ebs: list[float] = []
    sizes: list[int] = []
    for k in range(levels):
        eb_k = eb_abs0 / (ratio ** k)
        residual = (work - recon).astype(data.dtype)
        cf = pipeline.compress(residual, ErrorBound(eb_k, EbMode.ABS))
        writer.add_compressed(_level_name(k), cf,
                              pipeline_name=pipeline.name)
        res_recon = decompress(cf.blob)
        recon = recon + res_recon.astype(np.float64)
        ebs.append(eb_k)
        sizes.append(len(cf.blob))
    stats = ProgressiveStats(levels=levels, eb_abs_per_level=tuple(ebs),
                             bytes_per_level=tuple(sizes),
                             input_bytes=data.nbytes)
    return writer.to_bytes(), stats


class ProgressiveField:
    """Reader for a progressive container."""

    def __init__(self, blob: bytes) -> None:
        self.archive = Archive(blob)
        names = sorted(n for n in self.archive.names()
                       if n.startswith("level_"))
        if not names:
            raise HeaderError("not a progressive container")
        self._names = names

    @property
    def levels(self) -> int:
        return len(self._names)

    def bytes_to_level(self, k: int) -> int:
        """Bytes a reader must fetch for fidelity level ``k``."""
        self._check(k)
        return sum(self.archive.entry(n).length for n in self._names[:k + 1])

    def read(self, level: int | None = None) -> np.ndarray:
        """Reconstruct at the given fidelity (default: finest)."""
        if level is None:
            level = self.levels - 1
        self._check(level)
        first = self.archive.read(self._names[0])
        total = first.astype(np.float64)
        for name in self._names[1:level + 1]:
            total += self.archive.read(name).astype(np.float64)
        return total.astype(first.dtype)

    def _check(self, k: int) -> None:
        if not (0 <= k < self.levels):
            raise ConfigError(f"level {k} outside [0, {self.levels})")
