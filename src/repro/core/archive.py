"""Multi-field snapshot archives.

Scientific applications write dozens of fields per snapshot (Table 2:
CESM-ATM has 33, HURR 20).  An :class:`ArchiveWriter` packs many
independently-compressed fields — possibly with *different* pipelines per
field, which is exactly what the auto-tuner recommends — into one
self-describing file that :class:`Archive` reads back field-by-field
without decompressing the rest.

Layout::

    magic "FZAR" | u16 version | u32 index_len | index JSON | blob*

The index records, per field: name, byte offset/length of its container
blob, and summary stats (CR, eb).  Each member blob is a complete
``FZMD`` container (with its own CRC), so members can also be extracted
and decoded standalone.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import HeaderError, PipelineError
from ..types import EbMode, ErrorBound
from .pipeline import CompressedField, Pipeline, decompress as _decompress

ARCHIVE_MAGIC = b"FZAR"
ARCHIVE_VERSION = 1
_PREFIX = struct.Struct("<4sHI")


@dataclass(frozen=True)
class ArchiveEntry:
    """Index record for one archived field."""

    name: str
    offset: int
    length: int
    shape: tuple[int, ...]
    dtype: str
    eb_value: float
    eb_mode: str
    cr: float
    pipeline: str

    def to_json(self) -> dict:
        """JSON-serialisable form of this entry."""
        return {"name": self.name, "offset": self.offset,
                "length": self.length, "shape": list(self.shape),
                "dtype": self.dtype, "eb_value": self.eb_value,
                "eb_mode": self.eb_mode, "cr": self.cr,
                "pipeline": self.pipeline}

    @classmethod
    def from_json(cls, obj: dict) -> "ArchiveEntry":
        return cls(name=str(obj["name"]), offset=int(obj["offset"]),
                   length=int(obj["length"]),
                   shape=tuple(int(x) for x in obj["shape"]),
                   dtype=str(obj["dtype"]), eb_value=float(obj["eb_value"]),
                   eb_mode=str(obj["eb_mode"]), cr=float(obj["cr"]),
                   pipeline=str(obj["pipeline"]))


class ArchiveWriter:
    """Accumulates compressed fields and serialises the archive."""

    def __init__(self) -> None:
        self._entries: list[ArchiveEntry] = []
        self._blobs: list[bytes] = []
        self._names: set[str] = set()

    def add(self, name: str, data: np.ndarray, eb: ErrorBound | float,
            pipeline: Pipeline, mode: EbMode | str = EbMode.REL
            ) -> CompressedField:
        """Compress ``data`` with ``pipeline`` and append it."""
        cf = pipeline.compress(data, eb, mode)
        self.add_compressed(name, cf, pipeline_name=pipeline.name)
        return cf

    def add_compressed(self, name: str, cf: CompressedField,
                       pipeline_name: str | None = None) -> None:
        """Append an already-compressed field."""
        if name in self._names:
            raise PipelineError(f"archive already contains field {name!r}")
        self._names.add(name)
        offset = sum(len(b) for b in self._blobs)
        pname = pipeline_name
        if pname is None:
            pname = cf.header.modules.get("baseline",
                                          cf.header.modules.get("predictor",
                                                                "unknown"))
        self._entries.append(ArchiveEntry(
            name=name, offset=offset, length=len(cf.blob),
            shape=cf.header.shape, dtype=cf.header.dtype,
            eb_value=cf.header.eb_value, eb_mode=cf.header.eb_mode,
            cr=cf.stats.cr, pipeline=pname))
        self._blobs.append(cf.blob)

    def to_bytes(self) -> bytes:
        """Serialise the archive (index first, then member blobs)."""
        index = json.dumps([e.to_json() for e in self._entries],
                           separators=(",", ":")).encode("utf-8")
        return (_PREFIX.pack(ARCHIVE_MAGIC, ARCHIVE_VERSION, len(index))
                + index + b"".join(self._blobs))

    def write(self, path: str) -> int:
        """Serialise to ``path``; returns the byte count written."""
        blob = self.to_bytes()
        with open(path, "wb") as fh:
            fh.write(blob)
        return len(blob)

    @property
    def field_count(self) -> int:
        return len(self._entries)


class Archive:
    """Read-side view of an archive (lazy per-field decompression)."""

    def __init__(self, blob: bytes) -> None:
        if len(blob) < _PREFIX.size:
            raise HeaderError("archive too short")
        magic, version, ilen = _PREFIX.unpack_from(blob, 0)
        if magic != ARCHIVE_MAGIC:
            raise HeaderError(f"bad archive magic {magic!r}")
        if version != ARCHIVE_VERSION:
            raise HeaderError(f"unsupported archive version {version}")
        start = _PREFIX.size
        if len(blob) < start + ilen:
            raise HeaderError("truncated archive index")
        try:
            index = json.loads(blob[start:start + ilen].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HeaderError(f"unreadable archive index: {exc}") from exc
        self._entries = {e["name"]: ArchiveEntry.from_json(e) for e in index}
        self._body = blob[start + ilen:]

    @classmethod
    def open(cls, path: str) -> "Archive":
        with open(path, "rb") as fh:
            return cls(fh.read())

    def names(self) -> list[str]:
        """Member names, in insertion order."""
        return list(self._entries)

    def entry(self, name: str) -> ArchiveEntry:
        """Index record for one member (raises for unknown names)."""
        try:
            return self._entries[name]
        except KeyError:
            raise HeaderError(f"archive has no field {name!r}; "
                              f"have {sorted(self._entries)}") from None

    def raw_blob(self, name: str) -> bytes:
        """The member's container bytes, unparsed."""
        e = self.entry(name)
        blob = self._body[e.offset:e.offset + e.length]
        if len(blob) != e.length:
            raise HeaderError(f"archive member {name!r} truncated")
        return blob

    def read(self, name: str) -> np.ndarray:
        """Decompress one field (the rest of the archive is untouched).

        Members may be pipeline containers or baseline containers; the
        member header decides the decode path.
        """
        blob = self.raw_blob(name)
        from .header import parse
        header, _ = parse(blob)
        if "baseline" in header.modules:
            from ..baselines import get_compressor  # late: avoids cycle
            return get_compressor(header.modules["baseline"]).decompress(blob)
        return _decompress(blob)

    def read_all(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` for every member, decoding lazily."""
        for name in self._entries:
            yield name, self.read(name)

    def total_stats(self) -> dict[str, float]:
        """Aggregate uncompressed/compressed sizes and the campaign CR."""
        comp = sum(e.length for e in self._entries.values())
        orig = sum(int(np.prod(e.shape)) * np.dtype(e.dtype).itemsize
                   for e in self._entries.values())
        return {"fields": float(len(self._entries)),
                "uncompressed_bytes": float(orig),
                "compressed_bytes": float(comp),
                "cr": orig / comp if comp else 0.0}
