"""Fluent pipeline builder.

A small convenience layer over :class:`~repro.core.pipeline.Pipeline` for
the "rapid testing of multiple pipelines" workflow the paper advertises::

    pipe = (PipelineBuilder("my-pipe")
            .with_preprocess("rel-eb")
            .with_predictor("interp")
            .with_statistics("histogram-topk")
            .with_encoder("huffman")
            .with_secondary("zstd-like")
            .with_radius(512)
            .build())
"""

from __future__ import annotations

from ..errors import PipelineError
from .pipeline import DEFAULT_RADIUS, Pipeline
from .registry import DEFAULT_REGISTRY, ModuleRegistry
from .spec import PipelineSpec


class PipelineBuilder:
    """Accumulates stage choices, validates, and builds a Pipeline."""

    def __init__(self, name: str = "custom",
                 registry: ModuleRegistry = DEFAULT_REGISTRY) -> None:
        self.name = name
        self.registry = registry
        self._preprocess = "rel-eb"
        self._predictor: str | None = None
        self._statistics: str | None = None
        self._encoder: str | None = None
        self._secondary: str | None = None
        self._radius = DEFAULT_RADIUS

    @classmethod
    def from_spec(cls, spec: PipelineSpec,
                  registry: ModuleRegistry = DEFAULT_REGISTRY
                  ) -> "PipelineBuilder":
        """Seed a builder from an existing spec (tweak-and-rebuild flows)."""
        b = cls(spec.name, registry=registry)
        b._preprocess = spec.preprocess
        b._predictor = spec.predictor
        b._statistics = spec.statistics
        b._encoder = spec.encoder
        b._secondary = spec.secondary
        b._radius = spec.radius
        return b

    def with_preprocess(self, name: str) -> "PipelineBuilder":
        """Select the preprocessing module by name."""
        self._preprocess = name
        return self

    def with_predictor(self, name: str) -> "PipelineBuilder":
        """Select the predictor module by name."""
        self._predictor = name
        return self

    def with_statistics(self, name: str | None) -> "PipelineBuilder":
        """Select the statistics module (None lets Huffman pick the default)."""
        self._statistics = name
        return self

    def with_encoder(self, name: str) -> "PipelineBuilder":
        """Select the primary lossless encoder by name."""
        self._encoder = name
        return self

    def with_secondary(self, name: str | None) -> "PipelineBuilder":
        """Select the secondary lossless module (None = identity)."""
        self._secondary = name
        return self

    def with_radius(self, radius: int) -> "PipelineBuilder":
        """Set the quant-code radius (alphabet = 2*radius)."""
        if radius < 1:
            raise PipelineError(f"radius must be >= 1, got {radius}")
        self._radius = int(radius)
        return self

    def spec(self) -> PipelineSpec:
        """Validate the stage choices and freeze them as a PipelineSpec."""
        if self._predictor is None:
            raise PipelineError("a predictor module is required "
                                "(call .with_predictor)")
        if self._encoder is None:
            raise PipelineError("an encoder module is required "
                                "(call .with_encoder)")
        return PipelineSpec(
            preprocess=self._preprocess, predictor=self._predictor,
            statistics=self._statistics, encoder=self._encoder,
            secondary=self._secondary, radius=self._radius, name=self.name)

    def build(self) -> Pipeline:
        """Assemble the Pipeline (a thin delegate over ``from_spec``)."""
        return Pipeline.from_spec(self.spec(), registry=self.registry)
