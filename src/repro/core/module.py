"""The FZModules module interface: one small ABC per pipeline stage.

§3.3 of the paper decomposes a compressor into **preprocessing →
prediction → lossless encoding → secondary lossless encoding**, with
*statistics* modules (histograms) feeding encoders that need global data
statistics.  Each stage here is an abstract class with a narrow, typed
contract, so new modules are added by implementing a handful of methods and
registering the instance (see :mod:`repro.core.registry`), which is the
framework's extensibility story.

Modules must be stateless between calls (everything flows through the
artifacts), which is what lets the STF pipeline wrap any module as a task.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..kernels.histogram import HistogramResult
from ..kernels.quantize import OutlierSet
from ..types import ErrorBound, Stage


@dataclass(frozen=True)
class PreprocessResult:
    """Outcome of the preprocessing stage.

    ``eb_abs`` is the resolved absolute bound the rest of the pipeline
    enforces; ``meta`` carries anything decompression needs (nothing, for
    the current modules: the bound itself is stored in the header).
    """

    data: np.ndarray
    eb_abs: float
    meta: dict = field(default_factory=dict)


@dataclass
class PredictorArtifacts:
    """What a predictor hands to the encoding stages.

    Attributes
    ----------
    codes:
        dense unsigned quant codes (uint16/uint32), flattened stream.
    outliers:
        sparse unpredictable residuals.
    anchors:
        raw anchor values (interpolation predictors) or ``None``.
    aux:
        additional named integer/float side-channel arrays the predictor
        needs back verbatim at decode time (e.g. the regression
        predictor's quantised coefficient stream).  Serialised losslessly
        by the container layer.
    meta:
        predictor-specific scalars needed for decoding (e.g. max_level).
    """

    codes: np.ndarray
    outliers: OutlierSet
    anchors: np.ndarray | None = None
    aux: dict[str, np.ndarray] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class EncodedStream:
    """Encoder output: named binary sections plus scalar metadata."""

    sections: dict[str, bytes]
    meta: dict = field(default_factory=dict)

    def nbytes(self) -> int:
        """Total bytes across all sections."""
        return sum(len(v) for v in self.sections.values())


class Module(abc.ABC):
    """Base for every pipeline module."""

    #: which pipeline stage the module belongs to
    stage: Stage
    #: registry key (unique within the stage)
    name: str

    def describe(self) -> str:
        """One-line human description (used by the CLI module listing)."""
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.stage.value}:{self.name}>"


class PreprocessModule(Module):
    """Resolves the user error bound (and any data normalisation)."""

    stage = Stage.PREPROCESS

    @abc.abstractmethod
    def forward(self, data: np.ndarray, eb: ErrorBound) -> PreprocessResult:
        """Resolve ``eb`` against ``data`` and return the working field."""

    def backward(self, data: np.ndarray, meta: dict) -> np.ndarray:
        """Invert any value transform applied by :meth:`forward`.

        Identity by default (the abs/rel modules only resolve the bound);
        transforming preprocessors (e.g. the log transform behind the
        point-wise-relative mode) override this.  ``meta`` is the dict the
        forward pass stored in the container.
        """
        return data


class PredictorModule(Module):
    """Prediction + error-controlled quantisation (the lossy stage)."""

    stage = Stage.PREDICTOR

    @abc.abstractmethod
    def encode(self, data: np.ndarray, eb_abs: float, radius: int
               ) -> PredictorArtifacts:
        """Produce quant codes + outliers for ``data``."""

    @abc.abstractmethod
    def decode(self, artifacts: PredictorArtifacts, shape: tuple[int, ...],
               dtype: np.dtype, eb_abs: float, radius: int) -> np.ndarray:
        """Reconstruct the field from artifacts (within ``eb_abs``)."""


class StatisticsModule(Module):
    """Global data analysis feeding encoders (histograms)."""

    stage = Stage.STATISTICS

    @abc.abstractmethod
    def collect(self, codes: np.ndarray, num_bins: int) -> HistogramResult:
        """Histogram the quant codes."""


class EncoderModule(Module):
    """Primary lossless codec over the quant-code stream."""

    stage = Stage.ENCODER

    #: whether this encoder requires a statistics stage result
    needs_statistics: bool = False

    @abc.abstractmethod
    def encode(self, codes: np.ndarray, num_bins: int,
               hist: HistogramResult | None) -> EncodedStream:
        """Losslessly encode the dense code stream."""

    @abc.abstractmethod
    def decode(self, stream: EncodedStream, count: int, num_bins: int
               ) -> np.ndarray:
        """Exactly invert :meth:`encode`; returns the uint code stream."""


class SecondaryModule(Module):
    """Optional generic lossless pass over the assembled container body."""

    stage = Stage.SECONDARY

    @abc.abstractmethod
    def encode(self, body: bytes) -> bytes:
        """Compress the container body (must never corrupt; may expand)."""

    @abc.abstractmethod
    def decode(self, body: bytes) -> bytes:
        """Exactly invert :meth:`encode`."""
