"""Per-compressor cost profiles and throughput estimation.

Each profile translates the *structure* of a compressor — which stages run
where, how many bytes they move, how many kernels they launch — into a
:class:`~repro.perf.costmodel.PipelineCost`.  The measured statistics of an
actual compression run (achieved CR, quant-code stream size, outlier count)
parameterise the traffic terms, so modelled throughput responds to the data
exactly the way the paper's figures do (e.g. hard-to-quantise fields shrink
everyone's effective CR and drag the speedup numbers together).

Profile structure per compressor (compression direction):

``cuszp2``        one fused GPU kernel (read field, write output, block scans)
``fzgpu``         two GPU kernels (fused Lorenzo+shuffle, then compaction)
``fzmod-speed``   the same algorithms as fzgpu but staged: separate Lorenzo,
                  bitshuffle and compaction kernels (more traffic+launches —
                  why the paper finds it "performs worse at times")
``fzmod-default`` GPU Lorenzo + GPU histogram, quant codes cross D2H, CPU
                  Huffman encode
``fzmod-quality`` GPU multilevel interpolation (one kernel pair per level
                  and axis) + top-k histogram + D2H + CPU Huffman
``pfpl``          portable CPU compressor (quantise/delta/shuffle/eliminate)
``sz3``           high-quality CPU compressor, single-thread-heavy pipeline
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..metrics.throughput import ThroughputSample
from .costmodel import (CALIBRATION, Calibration, PipelineCost, Resource,
                        StageCost, cpu_rate)
from .platform import PlatformSpec

#: Canonical compressor names used across benches and plots.
COMPRESSORS = ("fzmod-default", "fzmod-quality", "fzmod-speed",
               "fzgpu", "cuszp2", "pfpl", "sz3")


@dataclass(frozen=True)
class RunStats:
    """Measured statistics of one compression run.

    Attributes
    ----------
    input_bytes:
        uncompressed field size.
    cr:
        achieved compression ratio.
    code_fraction:
        bytes of the dense quant-code stream per input byte (0.5 for f32
        fields with uint16 codes).
    outlier_fraction:
        outlier side-channel bytes per input byte.
    interp_levels:
        multilevel-interpolation level count (quality pipelines only).
    """

    input_bytes: int
    cr: float
    code_fraction: float = 0.5
    outlier_fraction: float = 0.0
    interp_levels: int = 4

    def __post_init__(self) -> None:
        if self.input_bytes <= 0 or self.cr <= 0:
            raise ConfigError("input_bytes and cr must be positive")


def _gpu(name: str, traffic: float, eff: float, launches: int = 1) -> StageCost:
    return StageCost(name=name, resource=Resource.GPU, traffic=traffic,
                     efficiency=eff, launches=launches)


def compression_cost(name: str, stats: RunStats, platform: PlatformSpec,
                     cal: Calibration = CALIBRATION) -> PipelineCost:
    """Stage-cost profile of ``name``'s compression direction."""
    cf = stats.code_fraction
    of = stats.outlier_fraction
    inv_cr = 1.0 / stats.cr
    p = PipelineCost(name=f"{name}/compress")
    if name == "cuszp2":
        p.stages = [_gpu("fused-quant-pred-pack", 1.0 + inv_cr + 0.15,
                         cal.gpu_eff_fused, launches=1)]
    elif name == "fzgpu":
        p.stages = [
            _gpu("fused-lorenzo-shuffle", 1.0 + cf, cal.gpu_eff_kernel),
            _gpu("compaction", 2.0 * cf + inv_cr, cal.gpu_eff_kernel),
        ]
    elif name == "fzmod-speed":
        p.stages = [
            _gpu("lorenzo", 1.0 + cf + of, cal.gpu_eff_kernel, launches=2),
            _gpu("bitshuffle", 2.0 * cf, cal.gpu_eff_kernel, launches=2),
            _gpu("zero-eliminate", 2.0 * cf + inv_cr, cal.gpu_eff_irregular,
                 launches=2),
        ]
    elif name == "fzmod-default":
        p.stages = [
            _gpu("lorenzo", 1.0 + cf + of, cal.gpu_eff_kernel, launches=2),
            _gpu("histogram", cf, cal.gpu_eff_irregular),
            StageCost("codes-D2H", Resource.D2H, cf + of),
            StageCost("huffman-encode", Resource.CPU, cf,
                      rate=cpu_rate(cal.cpu_huffman_encode_per_core, platform, cal)),
        ]
    elif name == "fzmod-quality":
        levels = max(1, stats.interp_levels)
        p.stages = [
            _gpu("g-interp", 1.0 + 2.2 * (1.0 + cf), cal.gpu_eff_kernel,
                 launches=3 * levels),
            _gpu("topk-histogram", 0.6 * cf, cal.gpu_eff_irregular),
            StageCost("codes-D2H", Resource.D2H, cf + of),
            StageCost("huffman-encode", Resource.CPU, cf,
                      rate=cpu_rate(cal.cpu_huffman_encode_per_core, platform, cal)),
        ]
    elif name == "pfpl":
        p.stages = [StageCost("pfpl-cpu", Resource.CPU, 1.0,
                              rate=cpu_rate(cal.cpu_pfpl_per_core, platform, cal))]
    elif name == "sz3":
        p.stages = [StageCost("sz3-cpu", Resource.CPU, 1.0,
                              rate=cpu_rate(cal.cpu_sz3_per_core, platform, cal))]
    else:
        raise ConfigError(f"unknown compressor {name!r}; have {COMPRESSORS}")
    return p


def decompression_cost(name: str, stats: RunStats, platform: PlatformSpec,
                       cal: Calibration = CALIBRATION) -> PipelineCost:
    """Stage-cost profile of ``name``'s decompression direction."""
    cf = stats.code_fraction
    of = stats.outlier_fraction
    inv_cr = 1.0 / stats.cr
    p = PipelineCost(name=f"{name}/decompress")
    if name == "cuszp2":
        p.stages = [_gpu("fused-unpack-scan", 1.0 + inv_cr + 0.15,
                         cal.gpu_eff_fused)]
    elif name == "fzgpu":
        p.stages = [
            _gpu("expand", 2.0 * cf + inv_cr, cal.gpu_eff_kernel),
            _gpu("fused-unshuffle-scan", 1.0 + cf, cal.gpu_eff_kernel),
        ]
    elif name == "fzmod-speed":
        p.stages = [
            _gpu("zero-restore", 2.0 * cf + inv_cr, cal.gpu_eff_irregular,
                 launches=2),
            _gpu("unshuffle", 2.0 * cf, cal.gpu_eff_kernel, launches=2),
            _gpu("inverse-lorenzo", 1.0 + cf + of, cal.gpu_eff_kernel,
                 launches=2),
        ]
    elif name == "fzmod-default":
        p.stages = [
            StageCost("huffman-decode", Resource.CPU, cf,
                      rate=cpu_rate(cal.cpu_huffman_decode_per_core, platform, cal)),
            StageCost("codes-H2D", Resource.H2D, cf + of),
            _gpu("scatter-outliers", 2.0 * of, cal.gpu_eff_irregular),
            _gpu("inverse-lorenzo", 1.0 + cf, cal.gpu_eff_kernel, launches=2),
        ]
    elif name == "fzmod-quality":
        levels = max(1, stats.interp_levels)
        p.stages = [
            StageCost("huffman-decode", Resource.CPU, cf,
                      rate=cpu_rate(cal.cpu_huffman_decode_per_core, platform, cal)),
            StageCost("codes-H2D", Resource.H2D, cf + of),
            _gpu("inverse-g-interp", 1.0 + 2.2 * (1.0 + cf),
                 cal.gpu_eff_kernel, launches=3 * levels),
        ]
    elif name == "pfpl":
        p.stages = [StageCost("pfpl-cpu", Resource.CPU, 1.0,
                              rate=cpu_rate(cal.cpu_pfpl_decode_per_core,
                                            platform, cal))]
    elif name == "sz3":
        p.stages = [StageCost("sz3-cpu", Resource.CPU, 1.0,
                              rate=cpu_rate(cal.cpu_sz3_per_core, platform, cal)
                              * 1.3)]
    else:
        raise ConfigError(f"unknown compressor {name!r}; have {COMPRESSORS}")
    return p


def estimate_throughput(name: str, stats: RunStats, platform: PlatformSpec,
                        cal: Calibration = CALIBRATION) -> ThroughputSample:
    """Modelled (compression, decompression) throughput in bytes/second."""
    c = compression_cost(name, stats, platform, cal)
    d = decompression_cost(name, stats, platform, cal)
    return ThroughputSample(
        compress_bps=c.throughput(platform, stats.input_bytes, cal),
        decompress_bps=d.throughput(platform, stats.input_bytes, cal),
    )
