"""Hardware platform descriptions (Table 1 of the paper).

The two Quartz nodes used in the evaluation, plus the loaded host<->device
bandwidth the paper measured with multi-gpu-bwtest and used as ``BW`` in the
overall-speedup metric (Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9
TB = 1e12


@dataclass(frozen=True)
class PlatformSpec:
    """One evaluation platform.

    Bandwidths are bytes/second; ``measured_link_bw`` is the *loaded*
    GPU<->CPU bandwidth with all four GPUs transferring (Table 1, "Measured
    Bandwidth"), which the paper plugs into Equation (1).
    """

    name: str
    gpu_model: str
    gpu_mem_bw: float          # HBM bandwidth
    gpu_fp32_tflops: float
    measured_link_bw: float    # loaded host link (Eq. 1's BW)
    gpu_launch_overhead: float  # seconds per kernel launch
    cpu_model: str
    cpu_cores: int
    cpu_mem_bw: float
    #: achieved-fraction scale of GPU kernels vs the H100 baseline (older
    #: SMs sustain a lower fraction of peak HBM bandwidth end-to-end).
    gpu_eff_scale: float = 1.0
    #: per-core CPU rate scale vs the Xeon 6248 baseline (the V100 node's
    #: Xeon 8468 cores are a newer, faster microarchitecture).
    cpu_per_core_scale: float = 1.0
    #: GPUs per node (both Quartz nodes are 4-way, Table 1)
    node_gpus: int = 4
    #: *unloaded* per-GPU host-link peak; under full node load each GPU
    #: gets min(peak, aggregate / node_gpus) — which is exactly the
    #: "Measured Bandwidth" row of Table 1 (multi-gpu-bwtest methodology)
    gpu_link_peak: float = 0.0

    @property
    def host_agg_bw(self) -> float:
        """Aggregate host ingest capacity implied by the loaded measurement."""
        return self.measured_link_bw * self.node_gpus

    @property
    def gpu_mem_bw_gbps(self) -> float:
        return self.gpu_mem_bw / GB

    @property
    def link_bw_gbps(self) -> float:
        return self.measured_link_bw / GB


#: Quartz "hopper" node: 4x H100 SXM 80 GB + 2x Xeon 6248 (40 cores).
H100 = PlatformSpec(
    name="Quartz H100",
    gpu_model="H100 SXM 80GB",
    gpu_mem_bw=3.35 * TB,
    gpu_fp32_tflops=67.0,
    measured_link_bw=35.7 * GB,
    gpu_launch_overhead=3e-6,
    cpu_model="2-way Intel Xeon 6248",
    cpu_cores=40,
    cpu_mem_bw=200 * GB,
    gpu_link_peak=55 * GB,
)

#: Quartz GPU node: 4x V100 PCIe 32 GB + 2x Xeon 8468 (96 cores).
V100 = PlatformSpec(
    name="Quartz V100",
    gpu_model="V100 PCIe 32GB",
    gpu_mem_bw=900 * GB,
    gpu_fp32_tflops=14.0,
    measured_link_bw=6.91 * GB,
    gpu_launch_overhead=5e-6,
    cpu_model="2-way Intel Xeon 8468",
    cpu_cores=96,
    cpu_mem_bw=300 * GB,
    gpu_eff_scale=0.55,
    cpu_per_core_scale=1.15,
    gpu_link_peak=12.8 * GB,
)

PLATFORMS: dict[str, PlatformSpec] = {"h100": H100, "v100": V100}


def get_platform(name: str) -> PlatformSpec:
    """Look a platform spec up by name (``h100``/``v100``)."""
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown platform {name!r}; have {sorted(PLATFORMS)}") from None


def table1_rows() -> list[dict[str, str]]:
    """Rows matching the paper's Table 1 (for the bench harness printer)."""
    rows = []
    for spec in (H100, V100):
        rows.append({
            "Platform": spec.name,
            "GPUs": f"4-way {spec.gpu_model}",
            "FP32": f"{spec.gpu_fp32_tflops:.0f} TFLOPS",
            "BW": f"{spec.gpu_mem_bw / TB:.2f} TB/s",
            "CPUs": spec.cpu_model,
            "CPU Cores": str(spec.cpu_cores),
            "Measured Bandwidth": f"~{spec.link_bw_gbps:.2f} GB/s",
        })
    return rows
