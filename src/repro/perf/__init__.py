"""Analytic performance model (Table 1 platforms + roofline cost model).

Regenerates the throughput/speedup figures from compressor structure and
measured compression statistics; see DESIGN.md §2 for why this substitutes
for CUDA wall-clock and how it is calibrated.
"""

from .costmodel import (CALIBRATION, Calibration, PipelineCost, Resource,
                        StageCost, cpu_rate)
from .estimator import (COMPRESSORS, RunStats, compression_cost,
                        decompression_cost, estimate_throughput)
from .platform import H100, PLATFORMS, V100, PlatformSpec, get_platform, table1_rows
from .regression import (best_seconds, check_regressions, diff,
                         median_seconds,
                         render_diff, render_report, run_hotpath_suite,
                         write_report)
from .sensitivity import (FIG1_ORDERINGS, OrderingCheck, ordering_robustness,
                          perturb, robustness_summary)

__all__ = [
    "CALIBRATION", "Calibration", "PipelineCost", "Resource", "StageCost",
    "cpu_rate", "COMPRESSORS", "RunStats", "compression_cost",
    "decompression_cost", "estimate_throughput", "H100", "PLATFORMS", "V100",
    "PlatformSpec", "get_platform", "table1_rows",
    "best_seconds", "check_regressions", "diff", "median_seconds",
    "render_diff",
    "render_report", "run_hotpath_suite", "write_report",
    "FIG1_ORDERINGS", "OrderingCheck", "ordering_robustness", "perturb",
    "robustness_summary",
]
