"""Roofline-style analytic cost model for compressor pipelines.

The paper reports wall-clock GB/s on H100/V100 CUDA kernels; this
reproduction executes NumPy kernels, whose absolute speed says nothing
about the GPUs.  Following DESIGN.md §2, Figures 1-3 are therefore
regenerated from a first-principles cost model:

* every pipeline stage is a :class:`StageCost` — a resource (GPU, CPU,
  H2D/D2H link), the bytes it reads+writes *per uncompressed input byte*
  (derived from the actual algorithm structure and the measured compression
  statistics of the run), a kernel-launch count, and an *efficiency*: the
  fraction of the resource's peak bandwidth the kernel family achieves;
* stage times add up (stages within one pipeline are dependent), and
  throughput = 1 / seconds-per-byte.

Efficiencies are the model's only free parameters.  They are calibrated
once, against the published throughput of each compressor family (fused
single-kernel GPU compressors reach ~25 % of HBM bandwidth end-to-end,
staged kernels less, CPU entropy coders a few GB/s per core), and are kept
in :data:`CALIBRATION` with the rationale inline.  The *shape* of the
figures — who wins, where crossovers fall — comes out of the structure
(pass counts, link crossings, CPU stages), not of per-case tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError
from .platform import PlatformSpec


class Resource(str, Enum):
    GPU = "gpu"
    CPU = "cpu"
    H2D = "h2d"
    D2H = "d2h"


@dataclass(frozen=True)
class Calibration:
    """Model constants shared by every compressor (see module docstring)."""

    #: fraction of peak HBM bandwidth achieved end-to-end by a fused
    #: single-kernel GPU compressor (cuSZp2 reports ~0.2-0.3 on A100/H100).
    gpu_eff_fused: float = 0.18
    #: ... by a well-tuned standalone kernel (cuSZ Lorenzo, FZ-GPU stages).
    gpu_eff_kernel: float = 0.20
    #: ... by memory-irregular kernels (histogram atomics, compaction).
    gpu_eff_irregular: float = 0.12
    #: CPU Huffman encode rate per core, bytes/s (multi-threaded canonical
    #: Huffman encoders reach ~1 GB/s/core on server Xeons).
    cpu_huffman_encode_per_core: float = 1.2e9
    #: CPU Huffman decode rate per core (decode is the slower direction).
    cpu_huffman_decode_per_core: float = 0.55e9
    #: PFPL-style portable CPU compressor rate per core (quantise + delta +
    #: shuffle + zero-eliminate; LC-framework reports ~10x OpenMP-SZ3).
    cpu_pfpl_per_core: float = 0.55e9
    cpu_pfpl_decode_per_core: float = 0.75e9
    #: SZ3 single-pipeline OpenMP rate per core (high-quality interpolation
    #: predictor; "tens of GB/s" across a whole node per the paper's intro).
    cpu_sz3_per_core: float = 0.08e9
    #: fraction of the measured loaded link bandwidth a single pipeline's
    #: staging transfers achieve.
    link_eff: float = 0.9
    #: threading efficiency of CPU stages across all cores.
    cpu_parallel_eff: float = 0.75


CALIBRATION = Calibration()


@dataclass(frozen=True)
class StageCost:
    """Cost of one pipeline stage, normalised per uncompressed input byte.

    ``traffic`` is bytes read+written on the resource per input byte;
    ``rate`` (bytes/s), when given, prices the stage directly (compute-bound
    CPU codecs) instead of via the resource bandwidth x efficiency.
    """

    name: str
    resource: Resource
    traffic: float
    launches: int = 1
    efficiency: float = 1.0
    rate: float | None = None

    def seconds_per_byte(self, platform: PlatformSpec,
                         cal: Calibration = CALIBRATION) -> float:
        """Stage time per uncompressed input byte on ``platform``."""
        if self.rate is not None:
            return self.traffic / self.rate
        if self.resource is Resource.GPU:
            bw = platform.gpu_mem_bw * self.efficiency * platform.gpu_eff_scale
        elif self.resource is Resource.CPU:
            bw = platform.cpu_mem_bw * self.efficiency
        else:
            bw = platform.measured_link_bw * cal.link_eff
        return self.traffic / bw

    def fixed_seconds(self, platform: PlatformSpec) -> float:
        """Launch-overhead time, independent of input size."""
        if self.resource is Resource.GPU:
            return self.launches * platform.gpu_launch_overhead
        return 0.0


@dataclass
class PipelineCost:
    """A sequence of dependent stages plus the input size."""

    name: str
    stages: list[StageCost] = field(default_factory=list)

    def seconds(self, platform: PlatformSpec, input_bytes: int,
                cal: Calibration = CALIBRATION) -> float:
        """Total modelled time for ``input_bytes`` of input."""
        if input_bytes <= 0:
            raise ConfigError("input_bytes must be positive")
        per_byte = sum(s.seconds_per_byte(platform, cal) for s in self.stages)
        fixed = sum(s.fixed_seconds(platform) for s in self.stages)
        return per_byte * input_bytes + fixed

    def throughput(self, platform: PlatformSpec, input_bytes: int,
                   cal: Calibration = CALIBRATION) -> float:
        """Modelled throughput in uncompressed bytes/second."""
        return input_bytes / self.seconds(platform, input_bytes, cal)


def cpu_rate(per_core: float, platform: PlatformSpec,
             cal: Calibration = CALIBRATION) -> float:
    """Aggregate multi-threaded CPU rate, capped by memory bandwidth."""
    return min(per_core * platform.cpu_per_core_scale * platform.cpu_cores
               * cal.cpu_parallel_eff,
               platform.cpu_mem_bw * 0.8)
