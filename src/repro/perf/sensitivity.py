"""Calibration sensitivity analysis.

The cost model's free parameters live in one :class:`Calibration` object;
the natural objection to any calibrated model is "did you tune the
conclusion in?".  This module answers it quantitatively: perturb each
constant by ±X% and check which *qualitative orderings* survive.  The
shipped claim tests assert the orderings at the calibration point; the
sensitivity sweep shows how far the point can move before a conclusion
flips.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from ..errors import ConfigError
from .costmodel import CALIBRATION, Calibration
from .estimator import COMPRESSORS, RunStats, estimate_throughput
from .platform import PlatformSpec

#: calibration fields that are rates/efficiencies (perturbable)
PERTURBABLE = tuple(f.name for f in fields(Calibration))


@dataclass(frozen=True)
class OrderingCheck:
    """A qualitative claim as a comparison of two compressors."""

    name: str
    faster: str
    slower: str
    direction: str = "compress"   # or "decompress"

    def holds(self, stats: RunStats, platform: PlatformSpec,
              cal: Calibration) -> bool:
        """True when the claimed ordering holds under ``cal``."""
        a = estimate_throughput(self.faster, stats, platform, cal)
        b = estimate_throughput(self.slower, stats, platform, cal)
        attr = f"{self.direction}_bps"
        return getattr(a, attr) > getattr(b, attr)


#: the Figure-1 orderings the paper claims (at the calibration point all
#: hold; sensitivity asks how robust they are)
FIG1_ORDERINGS = (
    OrderingCheck("cuszp2-fastest", "cuszp2", "fzgpu"),
    OrderingCheck("fused-beats-staged", "fzgpu", "fzmod-speed"),
    OrderingCheck("speed-beats-default", "fzmod-speed", "fzmod-default"),
    OrderingCheck("default-beats-quality", "fzmod-default", "fzmod-quality"),
    OrderingCheck("quality-beats-pfpl", "fzmod-quality", "pfpl"),
    OrderingCheck("pfpl-beats-sz3", "pfpl", "sz3"),
)


def perturb(cal: Calibration, param: str, factor: float) -> Calibration:
    """A copy of ``cal`` with one constant scaled by ``factor``."""
    if param not in PERTURBABLE:
        raise ConfigError(f"unknown calibration parameter {param!r}; "
                          f"have {PERTURBABLE}")
    return replace(cal, **{param: getattr(cal, param) * factor})


def ordering_robustness(stats: RunStats, platform: PlatformSpec,
                        spread: float = 0.2,
                        checks: tuple[OrderingCheck, ...] = FIG1_ORDERINGS,
                        cal: Calibration = CALIBRATION
                        ) -> dict[str, dict[str, bool]]:
    """For every (calibration parameter x ±spread), which orderings hold?

    Returns ``{“param*factor”: {check_name: bool}}``, including the
    baseline under key ``"baseline"``.
    """
    if not (0.0 < spread < 1.0):
        raise ConfigError("spread must be in (0, 1)")
    out: dict[str, dict[str, bool]] = {
        "baseline": {c.name: c.holds(stats, platform, cal) for c in checks}}
    for param in PERTURBABLE:
        for factor in (1.0 - spread, 1.0 + spread):
            key = f"{param}*{factor:.2f}"
            pcal = perturb(cal, param, factor)
            out[key] = {c.name: c.holds(stats, platform, pcal)
                        for c in checks}
    return out


def robustness_summary(results: dict[str, dict[str, bool]]) -> str:
    """Render: per claim, the fraction of perturbations under which it
    holds (1.00 = fully robust at this spread)."""
    checks = list(next(iter(results.values())))
    lines = [f"{'claim':<24} {'holds under perturbation':>26}"]
    n = len(results)
    for c in checks:
        frac = sum(1 for r in results.values() if r[c]) / n
        lines.append(f"{c:<24} {frac:>25.0%}")
    return "\n".join(lines)
