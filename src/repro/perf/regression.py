"""Hot-path perf-regression harness (measured, not modelled).

Unlike :mod:`repro.perf.costmodel` — which *predicts* GPU throughput from
structure — this module measures the real wall-clock effect of the
hot-path machinery on this machine: the plan caches
(:mod:`repro.kernels.plancache`), the runtime buffer pool
(:class:`repro.runtime.memory.BufferPool`) and the shared-codebook
sharding mode.  ``run_hotpath_suite`` produces the JSON report committed
at the repo root as ``BENCH_pipeline.json``; ``check_regressions`` is the
CI gate (the warmed path must never be slower than the cold path).

Cold means: every plan cache cleared before *each* timed call and the
buffer pool disabled — the behaviour of the engine before this machinery
existed.  Warm means: caches primed and pooling on — the steady state of
a server compressing a stream of similar fields.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Callable

import numpy as np

#: timing defaults (median-of-N with warmup discarded)
DEFAULT_WARMUP = 1
DEFAULT_REPEAT = 5


def median_seconds(fn: Callable[[], object], *,
                   warmup: int = DEFAULT_WARMUP,
                   repeat: int = DEFAULT_REPEAT,
                   setup: Callable[[], None] | None = None
                   ) -> tuple[float, object]:
    """Median wall time of ``fn()`` over ``repeat`` runs.

    ``warmup`` extra calls run first and are discarded (page faults, lazy
    imports, JIT-like first-touch effects); ``setup`` runs before every
    call — timed runs included — without being timed itself (the cold-path
    measurements use it to clear caches).  Returns ``(seconds,
    last_result)``.
    """
    result = None
    for _ in range(max(0, warmup)):
        if setup is not None:
            setup()
        result = fn()
    times = []
    for _ in range(max(1, repeat)):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def best_seconds(fn: Callable[[], object], *,
                 warmup: int = DEFAULT_WARMUP,
                 repeat: int = DEFAULT_REPEAT,
                 ) -> tuple[float, object]:
    """Minimum wall time of ``fn()`` over ``repeat`` runs (warmup first).

    The estimator for *small* deltas: scheduler noise and cache effects
    only ever add time, so the minimum of each arm converges on the true
    cost where a median still carries several percent of jitter — too
    much when the quantity being gated is itself a few percent (the
    sampling-profiler overhead budget).
    """
    result = None
    for _ in range(max(0, warmup)):
        result = fn()
    best = float("inf")
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_field(shape: tuple[int, ...]) -> np.ndarray:
    """A smooth, deterministic float32 field (compresses realistically)."""
    idx = np.indices(shape).astype(np.float64)
    f = np.zeros(shape)
    for k, g in enumerate(idx):
        f += np.sin(g / (11.0 + 2 * k)) * (30.0 / (k + 1))
    f += 0.01 * idx[0]
    return f.astype(np.float32)


def _cold_state() -> None:
    """Reset every amortisation layer (the pre-hot-path world)."""
    from ..kernels.plancache import clear_all_caches
    from ..runtime.memory import GLOBAL_POOL
    clear_all_caches()
    GLOBAL_POOL.clear()


def _traced_stages(fn: Callable[[], object], mb: float) -> dict:
    """One traced run of ``fn`` reduced to a per-stage breakdown.

    Runs ``fn`` once with telemetry forced on, feeds the captured spans
    through :func:`repro.obs.analyze.analyze` and keeps the per-stage
    rows (exclusive/inclusive seconds, byte counts, effective MB/s).
    ``exclusive_coverage`` is the fraction of the traced wall accounted
    for by exclusive stage time — a self-check that the instrumentation
    isn't leaving dark time unattributed.
    """
    from ..obs.analyze import analyze
    from ..obs.spans import GLOBAL_TRACER, set_telemetry
    prev = set_telemetry(True)
    GLOBAL_TRACER.clear()
    try:
        fn()
        records = GLOBAL_TRACER.records()
    finally:
        set_telemetry(prev)
        GLOBAL_TRACER.clear()
    rep = analyze(records)
    wall = rep["wall_seconds"]
    exclusive = sum(r["exclusive_s"] for r in rep["stages"])
    return {
        "wall_seconds": wall,
        "mb_s": mb / wall if wall else 0.0,
        "exclusive_coverage": exclusive / wall if wall else 0.0,
        "stages": {
            row["name"]: {
                "count": row["count"],
                "inclusive_s": row["inclusive_s"],
                "exclusive_s": row["exclusive_s"],
                "bytes_in": row["bytes_in"],
                "bytes_out": row["bytes_out"],
                "mb_s": row["mb_s"],
            }
            for row in rep["stages"]
        },
    }


def run_hotpath_suite(*, quick: bool = False,
                      warmup: int = DEFAULT_WARMUP,
                      repeat: int = DEFAULT_REPEAT,
                      workers: int = 4) -> dict:
    """Measure cold vs warmed hot paths and return the report dict.

    Sections
    --------
    ``single``
        one-shot ``Pipeline.compress`` / ``decompress`` of a smooth field,
        cold (caches cleared per call, pool off) vs warm (primed, pool on).
    ``compiled``
        warm compiled-plan compress (``compile=True``) vs warm
        interpreted (``compile=False``), with the byte-identity flag the
        CI gate enforces and the fused plan's content address.
    ``compiled_decompress``
        the read-side mirror: warm compiled-decode-plan decompress vs
        warm interpreted over the same container bytes, with the
        value-identity flag and the decode plan's content address.
    ``sharded``
        ``workers``-worker in-process sharded compression with small
        shards (so codebook construction is a meaningful fraction), cold
        vs warm, plus shared- vs per-shard-codebook size and time.
    ``threaded``
        slab-parallel compiled compress/decompress (``threads=4``) vs
        ``threads=1`` on the same plan, with the byte-identity flag
        asserted at every width (the speedup target is only gated on
        machines with at least 4 cores — ``cpu_count`` is recorded).
        The other sections pin ``threads=1`` so their numbers keep
        meaning on any machine.
    ``hotpath``
        the live cache/pool/allocator counters after the warm runs
        (:func:`repro.core.inspect.hotpath_stats`).
    """
    from ..core.inspect import hotpath_stats
    from ..core.pipeline import Pipeline, decompress
    from ..kernels.plancache import clear_all_caches
    from ..runtime.memory import GLOBAL_ALLOCATOR, set_pooling
    from ..types import EbMode

    shape = (96, 64, 64) if quick else (160, 128, 128)
    shard_mb = 0.25 if quick else 0.5
    rep = max(1, repeat // 2) if quick else repeat
    data = _bench_field(shape)
    pipe = Pipeline.from_names()
    eb = 1e-3
    mb = data.nbytes / 1e6

    report: dict = {
        "suite": "hotpath",
        "quick": quick,
        "config": {"shape": list(shape), "dtype": "float32",
                   "input_mb": round(mb, 3), "eb_rel": eb,
                   "pipeline": pipe.spec.to_json(), "warmup": warmup,
                   "repeat": rep, "workers": workers,
                   "shard_mb": shard_mb},
    }

    # ---- single-call compress ---------------------------------------- #
    set_pooling(False)
    cold_c, cf = median_seconds(lambda: pipe.compress(data, eb, threads=1),
                                warmup=warmup, repeat=rep, setup=_cold_state)
    set_pooling(True)
    warm_c, cf = median_seconds(lambda: pipe.compress(data, eb, threads=1),
                                warmup=max(1, warmup), repeat=rep)
    blob = cf.blob

    # ---- single-call decompress -------------------------------------- #
    set_pooling(False)
    cold_d, out = median_seconds(lambda: decompress(blob, threads=1),
                                 warmup=warmup, repeat=rep, setup=_cold_state)
    set_pooling(True)
    warm_d, out = median_seconds(lambda: decompress(blob, threads=1),
                                 warmup=max(1, warmup), repeat=rep)
    assert np.asarray(out).shape == data.shape
    report["single"] = {
        "compress": {"cold_s": cold_c, "warm_s": warm_c,
                     "speedup": cold_c / warm_c,
                     "cold_mb_s": mb / cold_c, "warm_mb_s": mb / warm_c},
        "decompress": {"cold_s": cold_d, "warm_s": warm_d,
                       "speedup": cold_d / warm_d,
                       "cold_mb_s": mb / cold_d, "warm_mb_s": mb / warm_d},
        "cr": cf.stats.cr,
        "stage_seconds": dict(cf.stats.stage_seconds),
    }

    # ---- compiled plan vs interpreter (same engine, same bytes) ------- #
    warm_i, icf = median_seconds(
        lambda: pipe.compress(data, eb, compile=False, threads=1),
        warmup=max(1, warmup), repeat=rep)
    warm_p, pcf = median_seconds(
        lambda: pipe.compress(data, eb, compile=True, threads=1),
        warmup=max(1, warmup), repeat=rep)
    report["compiled"] = {
        "plan_key": pipe.compile().key,
        "interpreted": {"warm_s": warm_i, "warm_mb_s": mb / warm_i},
        "compress": {"warm_s": warm_p, "warm_mb_s": mb / warm_p,
                     "speedup_vs_interpreted": warm_i / warm_p},
        "blob_identical": pcf.blob == icf.blob,
    }

    # ---- compiled decode plan vs interpreter (same bytes in, must be
    # the same field out) ----------------------------------------------- #
    from ..compile import decode_plan_for_header
    from ..core.header import peek_header

    warm_di, ifield = median_seconds(
        lambda: decompress(blob, compile=False, threads=1),
        warmup=max(1, warmup), repeat=rep)
    warm_dp, pfield = median_seconds(
        lambda: decompress(blob, compile=True, threads=1),
        warmup=max(1, warmup), repeat=rep)
    dplan = decode_plan_for_header(peek_header(blob))
    report["compiled_decompress"] = {
        "plan_key": None if dplan is None else dplan.key,
        "interpreted": {"warm_s": warm_di, "warm_mb_s": mb / warm_di},
        "decompress": {"warm_s": warm_dp, "warm_mb_s": mb / warm_dp,
                       "speedup_vs_interpreted": warm_di / warm_dp},
        "value_identical": (np.asarray(pfield).tobytes()
                            == np.asarray(ifield).tobytes()),
    }

    # ---- sharded compress (in-process pool: workers share the caches; a
    # process pool would start every worker cold) ----------------------- #
    from ..api import compress as facade_compress

    def sharded_in(codebook: str = "per-shard"):
        return facade_compress(data, pipe, eb, mode=EbMode.REL,
                               workers=workers, shard_mb=shard_mb,
                               backend="inprocess", codebook=codebook)

    set_pooling(False)
    cold_s, sf = median_seconds(sharded_in, warmup=warmup, repeat=rep,
                                setup=_cold_state)
    set_pooling(True)
    warm_s, sf = median_seconds(sharded_in, warmup=max(1, warmup), repeat=rep)

    per_shard_bytes = sf.nbytes
    shared_t, shf = median_seconds(lambda: sharded_in("shared"),
                                   warmup=max(1, warmup), repeat=rep)
    shared_out = decompress(shf.blob)
    assert np.array_equal(shared_out, decompress(sf.blob)), \
        "shared-codebook reconstruction diverged from per-shard"
    report["sharded"] = {
        "workers": workers,
        "shards": sf.shard_count,
        "compress": {"cold_s": cold_s, "warm_s": warm_s,
                     "speedup": cold_s / warm_s,
                     "cold_mb_s": mb / cold_s, "warm_mb_s": mb / warm_s},
        "shared_codebook": {
            "per_shard_bytes": per_shard_bytes,
            "shared_bytes": shf.nbytes,
            "bytes_saved": per_shard_bytes - shf.nbytes,
            "per_shard_s": warm_s,
            "shared_s": shared_t,
        },
    }

    # ---- telemetry overhead (spans sit on the hot path now) ----------- #
    from ..obs.spans import GLOBAL_TRACER, set_telemetry, span

    prev = set_telemetry(True)
    GLOBAL_TRACER.clear()
    cf_on = pipe.compress(data, eb, threads=1)
    spans_per_compress = len(GLOBAL_TRACER.records())
    GLOBAL_TRACER.clear()
    set_telemetry(False)
    cf_off = pipe.compress(data, eb, threads=1)
    loops = 20_000 if quick else 100_000

    def noop_spans():
        for _ in range(loops):
            with span("bench.noop"):
                pass

    noop_s, _ = median_seconds(noop_spans, warmup=1, repeat=3)
    set_telemetry(prev)
    per_span_s = noop_s / loops
    overhead_s = per_span_s * spans_per_compress
    report["telemetry"] = {
        "spans_per_compress": spans_per_compress,
        "disabled_span_ns": per_span_s * 1e9,
        "disabled_overhead_s": overhead_s,
        # disabled-mode span cost as a fraction of the warm compress time;
        # gated < TELEMETRY_OVERHEAD_BUDGET so instrumentation stays free
        "disabled_overhead_fraction": overhead_s / warm_c,
        "blob_identical": cf_on.blob == cf_off.blob,
    }

    # ---- per-stage breakdown (one traced warm run of each direction) -- #
    # Persisted into BENCH_pipeline.json so a later run can self-attribute
    # a throughput delta with diff() instead of guessing which stage moved.
    report["stages"] = {
        "compress": _traced_stages(
            lambda: pipe.compress(data, eb, threads=1), mb),
        "decompress": _traced_stages(
            lambda: decompress(blob, threads=1), mb),
    }

    # ---- sampling profiler overhead (telemetry on in both arms, so the
    # measured delta is the sampler thread + registry mirror alone;
    # best-of-N at the shipped FZMOD_PROFILE interval, because the budget
    # being gated is smaller than one run's median-timing jitter) ------- #
    from ..obs.profile import DEFAULT_INTERVAL, Profiler

    prev = set_telemetry(True)
    try:
        GLOBAL_TRACER.clear()
        prof_off_s, cf_prof_off = best_seconds(
            lambda: pipe.compress(data, eb, threads=1),
            warmup=max(1, warmup),
            repeat=max(rep, 5))
        prof = Profiler(interval=DEFAULT_INTERVAL)
        prof.start()
        try:
            prof_on_s, cf_prof_on = best_seconds(
                lambda: pipe.compress(data, eb, threads=1),
            warmup=max(1, warmup),
                repeat=max(rep, 5))
        finally:
            prof.stop()
    finally:
        set_telemetry(prev)
        GLOBAL_TRACER.clear()
    report["profiler"] = {
        "interval_s": prof.interval,
        "samples": prof.sample_count,
        "distinct_stacks": len(prof.samples),
        "warm_off_s": prof_off_s,
        "warm_on_s": prof_on_s,
        "overhead_fraction": max(0.0, prof_on_s / prof_off_s - 1.0),
        "blob_identical": cf_prof_on.blob == cf_prof_off.blob,
    }

    # ---- slab-parallel threads (same container bytes at every width) -- #
    cpu_count = os.cpu_count() or 1
    t_width = 4
    warm_t1, tcf1 = median_seconds(
        lambda: pipe.compress(data, eb, compile=True, threads=1),
        warmup=max(1, warmup), repeat=rep)
    warm_tn, tcfn = median_seconds(
        lambda: pipe.compress(data, eb, compile=True, threads=t_width),
        warmup=max(1, warmup), repeat=rep)
    blob_t2 = pipe.compress(data, eb, compile=True, threads=2).blob
    warm_dt1, tf1 = median_seconds(
        lambda: decompress(blob, compile=True, threads=1),
        warmup=max(1, warmup), repeat=rep)
    warm_dtn, tfn = median_seconds(
        lambda: decompress(blob, compile=True, threads=t_width),
        warmup=max(1, warmup), repeat=rep)
    report["threaded"] = {
        "cpu_count": cpu_count,
        "threads": t_width,
        "compress": {
            "warm_s_one_thread": warm_t1, "warm_s": warm_tn,
            "warm_mb_s": mb / warm_tn,
            "speedup_vs_one_thread": warm_t1 / warm_tn,
        },
        "decompress": {
            "warm_s_one_thread": warm_dt1, "warm_s": warm_dtn,
            "warm_mb_s": mb / warm_dtn,
            "speedup_vs_one_thread": warm_dt1 / warm_dtn,
        },
        "blob_identical": bool(tcfn.blob == tcf1.blob
                               and blob_t2 == tcf1.blob),
        "value_identical": bool(np.asarray(tfn).tobytes()
                                == np.asarray(tf1).tobytes()),
    }

    report["hotpath"] = hotpath_stats()
    report["peak_bytes"] = dict(GLOBAL_ALLOCATOR.peak)
    report["checks"] = check_results(report)
    clear_all_caches()
    return report


#: perf targets asserted over the committed report (ratio floors)
TARGET_WARM_DECOMPRESS = 1.5
TARGET_WARM_SHARDED = 1.2
#: the pre-compiler warm single-stream compress throughput this harness
#: recorded on the reference machine; the compiled fused plans must at
#: least double it (the plan-compiler tentpole's acceptance bar)
BASELINE_SINGLE_MB_S = 137.0
TARGET_COMPILED_MB_S = 2.0 * BASELINE_SINGLE_MB_S
#: the decode-plan tentpole's acceptance bar: warm compiled single-stream
#: decompress must beat the warm interpreter by this ratio
TARGET_COMPILED_DECODE = 1.5
#: disabled-telemetry span cost must stay under this fraction of a warm
#: compress (the ISSUE's "within 3% of untraced runtime" acceptance bar)
TELEMETRY_OVERHEAD_BUDGET = 0.03
#: running the sampling profiler must cost under this fraction of a warm
#: traced compress (and must never change the container bytes)
PROFILER_OVERHEAD_BUDGET = 0.05
#: the slab-parallelism tentpole's acceptance bar: warm compiled compress
#: at threads=4 must beat threads=1 by this ratio.  Only gated when the
#: machine actually has >= 4 cores (``threaded.cpu_count``); the
#: byte-identity flags are gated everywhere, on any core count
TARGET_THREADED = 1.7
THREADED_GATE_MIN_CORES = 4


def check_results(report: dict) -> dict:
    """Pass/fail flags derived from a suite report.

    ``warm_not_slower`` is the hard CI gate (a warmed cache must never
    lose to a cold one); the ``target_*`` flags track the tentpole
    speedup goals and are reported, not gated, in ``--quick`` runs.
    """
    single = report["single"]
    sharded = report["sharded"]
    checks = {
        "warm_decompress_not_slower":
            single["decompress"]["warm_s"] <= single["decompress"]["cold_s"],
        "warm_compress_not_slower":
            single["compress"]["warm_s"] <= single["compress"]["cold_s"],
        "target_warm_decompress_1.5x":
            single["decompress"]["speedup"] >= TARGET_WARM_DECOMPRESS,
        "target_warm_sharded_1.2x":
            sharded["compress"]["speedup"] >= TARGET_WARM_SHARDED,
    }
    tel = report.get("telemetry")
    if tel is not None:  # fakes and pre-telemetry reports lack the section
        checks["telemetry_disabled_overhead_lt_3pct"] = (
            tel["disabled_overhead_fraction"] < TELEMETRY_OVERHEAD_BUDGET)
        checks["telemetry_blob_identical"] = bool(tel["blob_identical"])
    prof = report.get("profiler")
    if prof is not None:  # pre-profiler reports lack the section
        checks["profiler_overhead_lt_5pct"] = (
            prof["overhead_fraction"] < PROFILER_OVERHEAD_BUDGET)
        checks["profiler_blob_identical"] = bool(prof["blob_identical"])
    comp = report.get("compiled")
    if comp is not None:  # pre-compiler reports lack the section
        checks["compiled_blob_identical"] = bool(comp["blob_identical"])
        checks["compiled_not_slower_than_interpreted"] = (
            comp["compress"]["warm_s"] <= comp["interpreted"]["warm_s"])
        checks["target_compiled_274_mb_s"] = (
            comp["compress"]["warm_mb_s"] >= TARGET_COMPILED_MB_S)
    dcomp = report.get("compiled_decompress")
    if dcomp is not None:  # pre-decode-compiler reports lack the section
        checks["compiled_decode_value_identical"] = (
            bool(dcomp["value_identical"]))
        checks["compiled_decode_not_slower_than_interpreted"] = (
            dcomp["decompress"]["warm_s"] <= dcomp["interpreted"]["warm_s"])
        checks["target_compiled_decode_1.5x"] = (
            dcomp["decompress"]["speedup_vs_interpreted"]
            >= TARGET_COMPILED_DECODE)
    thr = report.get("threaded")
    if thr is not None:  # pre-threading reports lack the section
        checks["threaded_blob_identical"] = bool(thr["blob_identical"])
        checks["threaded_value_identical"] = bool(thr["value_identical"])
        # the speedup is only a meaningful measurement on a full-size
        # field and a machine with as many cores as slab threads; the
        # identity flags above are gated everywhere, on any core count
        if (thr["cpu_count"] >= THREADED_GATE_MIN_CORES
                and not report.get("quick")):
            checks["target_threaded_1.7x"] = (
                thr["compress"]["speedup_vs_one_thread"] >= TARGET_THREADED)
    return checks


#: streaming compress must keep its peak-RSS delta under this fraction
#: of the (memory-mapped, never fully resident) input field
STREAM_RSS_CEILING = 0.5


def streaming_check_results(section: dict) -> dict:
    """Pass/fail flags for a ``"streaming"`` report section.

    The section is produced by ``benchmarks/bench_streaming.py``:
    ``compress.peak_rss_delta_bytes`` is the ``ru_maxrss`` growth over
    one out-of-core compress of ``config.field_bytes`` input,
    ``identity.identical`` records byte-equality against the in-memory
    sharded engine, and ``overlap.adjacent_overlaps`` counts shard-``k``
    outlier scatters that ran concurrently with shard-``k+1`` Huffman
    decodes.
    """
    field_bytes = section["config"]["field_bytes"]
    return {
        "stream_rss_below_half_field":
            section["compress"]["peak_rss_delta_bytes"]
            <= STREAM_RSS_CEILING * field_bytes,
        "stream_blob_identical": bool(section["identity"]["identical"]),
        "stream_overlap_observed":
            section["overlap"]["adjacent_overlaps"] > 0,
    }


def check_regressions(report: dict, *, strict: bool = False) -> list[str]:
    """Failure messages for a report (empty = healthy).

    The non-strict gate fails only on true regressions (warm slower than
    cold); ``strict`` additionally enforces the tentpole speedup targets
    (used when regenerating the committed ``BENCH_pipeline.json``).
    """
    checks = report.get("checks") or check_results(report)
    failures = []
    if not checks["warm_decompress_not_slower"]:
        failures.append(
            "warmed-cache decompress is slower than cold "
            f"({report['single']['decompress']['warm_s']:.4f}s vs "
            f"{report['single']['decompress']['cold_s']:.4f}s)")
    if not checks["warm_compress_not_slower"]:
        failures.append(
            "warmed-cache compress is slower than cold "
            f"({report['single']['compress']['warm_s']:.4f}s vs "
            f"{report['single']['compress']['cold_s']:.4f}s)")
    if not checks.get("telemetry_blob_identical", True):
        failures.append(
            "compressing with telemetry enabled changed the container "
            "bytes; instrumentation must never reach serialized output")
    if not checks.get("telemetry_disabled_overhead_lt_3pct", True):
        tel = report["telemetry"]
        failures.append(
            f"disabled-telemetry span overhead "
            f"{tel['disabled_overhead_fraction'] * 100:.2f}% of a warm "
            f"compress exceeds the {TELEMETRY_OVERHEAD_BUDGET * 100:.0f}% "
            "budget")
    if not checks.get("profiler_blob_identical", True):
        failures.append(
            "compressing with the sampling profiler running changed the "
            "container bytes; sampling must never reach serialized output")
    if not checks.get("profiler_overhead_lt_5pct", True):
        prof = report["profiler"]
        failures.append(
            f"sampling-profiler overhead "
            f"{prof['overhead_fraction'] * 100:.2f}% of a warm traced "
            f"compress exceeds the {PROFILER_OVERHEAD_BUDGET * 100:.0f}% "
            "budget")
    if not checks.get("compiled_blob_identical", True):
        failures.append(
            "compiled-plan container bytes diverged from the interpreter; "
            "the fused executor must be byte-identical")
    if not checks.get("compiled_not_slower_than_interpreted", True):
        comp = report["compiled"]
        failures.append(
            f"compiled compress is slower than interpreted "
            f"({comp['compress']['warm_s']:.4f}s vs "
            f"{comp['interpreted']['warm_s']:.4f}s)")
    if not checks.get("compiled_decode_value_identical", True):
        failures.append(
            "compiled-decode reconstruction diverged from the "
            "interpreter; the fused decode executor must be "
            "value-identical")
    if not checks.get("compiled_decode_not_slower_than_interpreted", True):
        dcomp = report["compiled_decompress"]
        failures.append(
            f"compiled decompress is slower than interpreted "
            f"({dcomp['decompress']['warm_s']:.4f}s vs "
            f"{dcomp['interpreted']['warm_s']:.4f}s)")
    if not checks.get("threaded_blob_identical", True):
        failures.append(
            "threaded slab-parallel compress changed the container bytes; "
            "output must be byte-identical to threads=1 at every width")
    if not checks.get("threaded_value_identical", True):
        failures.append(
            "threaded slab-parallel decompress diverged from the "
            "threads=1 reconstruction; values must be identical at "
            "every width")
    if not checks.get("target_threaded_1.7x", True):
        thr = report["threaded"]
        failures.append(
            f"threaded compress speedup "
            f"{thr['compress']['speedup_vs_one_thread']:.2f}x at "
            f"threads={thr['threads']} below the {TARGET_THREADED}x "
            f"target ({thr['cpu_count']} cores)")
    if strict:
        if not checks.get("target_compiled_decode_1.5x", True):
            dcomp = report["compiled_decompress"]
            failures.append(
                f"compiled warm decompress speedup "
                f"{dcomp['decompress']['speedup_vs_interpreted']:.2f}x "
                f"below the {TARGET_COMPILED_DECODE}x-vs-interpreted "
                "target")
        if not checks.get("target_compiled_274_mb_s", True):
            comp = report["compiled"]
            failures.append(
                f"compiled warm compress "
                f"{comp['compress']['warm_mb_s']:.1f} MB/s below the "
                f"{TARGET_COMPILED_MB_S:.0f} MB/s target "
                f"(2x the {BASELINE_SINGLE_MB_S:.0f} MB/s pre-compiler "
                "baseline)")
        if not checks["target_warm_decompress_1.5x"]:
            failures.append(
                f"warmed decompress speedup "
                f"{report['single']['decompress']['speedup']:.2f}x below "
                f"the {TARGET_WARM_DECOMPRESS}x target")
        if not checks["target_warm_sharded_1.2x"]:
            failures.append(
                f"warmed sharded compress speedup "
                f"{report['sharded']['compress']['speedup']:.2f}x below "
                f"the {TARGET_WARM_SHARDED}x target")
    stream = report.get("streaming")
    if stream is not None:
        schecks = stream.get("checks") or streaming_check_results(stream)
        if not schecks.get("stream_rss_below_half_field", True):
            failures.append(
                f"streaming compress peak-RSS delta "
                f"{stream['compress']['peak_rss_delta_bytes']} B exceeds "
                f"{STREAM_RSS_CEILING:.0%} of the "
                f"{stream['config']['field_bytes']} B field")
        if not schecks.get("stream_blob_identical", True):
            failures.append(
                "compress_stream output diverged from the in-memory "
                "sharded container bytes")
        if not schecks.get("stream_overlap_observed", True):
            failures.append(
                "no shard-k outlier scatter overlapped a shard-k+1 "
                "Huffman decode in the streaming decompress trace")
    return failures


def diff(run_a: dict, run_b: dict) -> dict:
    """Attribute the wall-time delta between two suite reports to stages.

    ``run_a`` is the baseline (e.g. the committed ``BENCH_pipeline.json``)
    and ``run_b`` the candidate.  For each direction with a ``"stages"``
    breakdown in both reports, the per-stage *exclusive* seconds are
    differenced; each stage's ``share`` is its fraction of the total wall
    delta, so a single regressed stage shows up with share ≈ 1.0 and a
    uniform slowdown spreads evenly.  Stages are ranked by absolute
    delta — ``top_stage`` names the prime suspect.
    """
    out: dict = {"sections": {}}
    for section in ("compress", "decompress"):
        sa = (run_a.get("stages") or {}).get(section)
        sb = (run_b.get("stages") or {}).get(section)
        if not sa or not sb:
            continue
        wall_a = float(sa.get("wall_seconds") or 0.0)
        wall_b = float(sb.get("wall_seconds") or 0.0)
        delta = wall_b - wall_a
        rows = []
        for name in sorted(set(sa["stages"]) | set(sb["stages"])):
            a_s = float(sa["stages"].get(name, {}).get("exclusive_s", 0.0))
            b_s = float(sb["stages"].get(name, {}).get("exclusive_s", 0.0))
            d = b_s - a_s
            rows.append({"name": name, "a_s": a_s, "b_s": b_s,
                         "delta_s": d,
                         "share": d / delta if delta else 0.0})
        rows.sort(key=lambda r: abs(r["delta_s"]), reverse=True)
        out["sections"][section] = {
            "wall_a_s": wall_a,
            "wall_b_s": wall_b,
            "delta_s": delta,
            "delta_pct": delta / wall_a * 100.0 if wall_a else 0.0,
            "regressed": delta > 0,
            "top_stage": rows[0]["name"] if rows else None,
            "stages": rows,
        }
    return out


def render_diff(d: dict, *, top: int = 5) -> str:
    """Human-readable summary of a :func:`diff` result."""
    lines = []
    for section, s in d["sections"].items():
        word = ("slower" if s["delta_s"] > 0
                else "faster" if s["delta_s"] < 0 else "unchanged")
        lines.append(
            f"{section}: {s['wall_a_s']:.4f}s -> {s['wall_b_s']:.4f}s "
            f"({s['delta_pct']:+.1f}%, {word})")
        for r in s["stages"][:top]:
            lines.append(
                f"  {r['name']:<22} {r['a_s']:.4f}s -> {r['b_s']:.4f}s "
                f"({r['delta_s']:+.4f}s, {r['share']:+.0%} of delta)")
    if not lines:
        return ("no comparable per-stage sections; regenerate both reports "
                "with a bench that records a 'stages' breakdown")
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Human-readable summary of a suite report."""
    s, p = report["single"], report["sharded"]
    lines = [
        f"hot-path suite ({report['config']['input_mb']:.1f} MB field, "
        f"median of {report['config']['repeat']})",
        f"  compress    cold {s['compress']['cold_s']:.4f}s  "
        f"warm {s['compress']['warm_s']:.4f}s  "
        f"({s['compress']['speedup']:.2f}x)",
        f"  decompress  cold {s['decompress']['cold_s']:.4f}s  "
        f"warm {s['decompress']['warm_s']:.4f}s  "
        f"({s['decompress']['speedup']:.2f}x)",
        f"  sharded x{p['workers']} cold {p['compress']['cold_s']:.4f}s  "
        f"warm {p['compress']['warm_s']:.4f}s  "
        f"({p['compress']['speedup']:.2f}x)",
        f"  shared codebook saves {p['shared_codebook']['bytes_saved']} B "
        f"({p['shared_codebook']['per_shard_bytes']} -> "
        f"{p['shared_codebook']['shared_bytes']})",
    ]
    comp = report.get("compiled")
    if comp is not None:
        ident = ("byte-identical" if comp["blob_identical"] else "DIVERGED")
        lines.append(
            f"  compiled    {comp['compress']['warm_mb_s']:.1f} MB/s vs "
            f"{comp['interpreted']['warm_mb_s']:.1f} MB/s interpreted "
            f"({comp['compress']['speedup_vs_interpreted']:.2f}x, {ident}, "
            f"plan {comp['plan_key'][:12]})")
    dcomp = report.get("compiled_decompress")
    if dcomp is not None:
        ident = ("value-identical" if dcomp["value_identical"]
                 else "DIVERGED")
        key = dcomp["plan_key"]
        lines.append(
            f"  c.decomp    {dcomp['decompress']['warm_mb_s']:.1f} MB/s vs "
            f"{dcomp['interpreted']['warm_mb_s']:.1f} MB/s interpreted "
            f"({dcomp['decompress']['speedup_vs_interpreted']:.2f}x, "
            f"{ident}, plan {'-' if key is None else key[:12]})")
    thr = report.get("threaded")
    if thr is not None:
        ident = ("byte-identical" if thr["blob_identical"]
                 and thr["value_identical"] else "DIVERGED")
        lines.append(
            f"  threaded x{thr['threads']} "
            f"compress {thr['compress']['warm_mb_s']:.1f} MB/s "
            f"({thr['compress']['speedup_vs_one_thread']:.2f}x vs 1 "
            f"thread), decode "
            f"{thr['decompress']['speedup_vs_one_thread']:.2f}x, "
            f"{ident}, {thr['cpu_count']} core(s)")
    tel = report.get("telemetry")
    if tel is not None:
        lines.append(
            f"  telemetry   {tel['spans_per_compress']} spans/compress, "
            f"{tel['disabled_span_ns']:.0f} ns/span disabled "
            f"({tel['disabled_overhead_fraction'] * 100:.3f}% of warm)")
    prof = report.get("profiler")
    if prof is not None:
        lines.append(
            f"  profiler    {prof['samples']} samples @ "
            f"{prof['interval_s'] * 1e3:.0f} ms, "
            f"{prof['overhead_fraction'] * 100:.2f}% overhead")
    stages = report.get("stages")
    if stages is not None:
        for section, s in stages.items():
            ranked = sorted(s["stages"].items(),
                            key=lambda kv: kv[1]["exclusive_s"],
                            reverse=True)[:3]
            hot = ", ".join(f"{name} {row['exclusive_s']:.4f}s"
                            for name, row in ranked)
            lines.append(
                f"  stages/{section:<10} wall {s['wall_seconds']:.4f}s "
                f"({s['exclusive_coverage']:.0%} attributed): {hot}")
    stream = report.get("streaming")
    if stream is not None:
        sc, sd = stream["compress"], stream["decompress"]
        lines.append(
            f"  streaming   {stream['config']['field_mb']:.0f} MB field: "
            f"compress {sc['mb_s']:.1f} MB/s "
            f"(peak-RSS delta {sc['peak_rss_delta_bytes'] / 1e6:.1f} MB), "
            f"decompress {sd['mb_s']:.1f} MB/s, "
            f"{stream['overlap']['adjacent_overlaps']} overlapped "
            "scatter/decode pairs")
        for name, ok in stream.get("checks", {}).items():
            lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
    for name, ok in report["checks"].items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return "\n".join(lines)


def _history_entry(report: dict) -> dict:
    """Compact record kept for a run once a newer report replaces it."""
    s = report.get("single", {})
    return {
        "quick": report.get("quick"),
        "warm_compress_s": s.get("compress", {}).get("warm_s"),
        "warm_decompress_s": s.get("decompress", {}).get("warm_s"),
        "sharded_speedup":
            report.get("sharded", {}).get("compress", {}).get("speedup"),
        "compiled_mb_s": report.get("compiled", {})
            .get("compress", {}).get("warm_mb_s"),
        "compiled_decode_speedup": report.get("compiled_decompress", {})
            .get("decompress", {}).get("speedup_vs_interpreted"),
        "threaded_speedup": report.get("threaded", {})
            .get("compress", {}).get("speedup_vs_one_thread"),
        "checks": report.get("checks", {}),
    }


def write_report(report: dict, path: str, *, fresh: bool = False) -> None:
    """Write the report as stable, diff-friendly JSON.

    The latest report stays at the JSON root (so readers of the committed
    ``BENCH_pipeline.json`` are unaffected); prior runs accumulate as
    compact records under a ``"history"`` key instead of being lost on
    every rewrite.  ``fresh=True`` discards the accumulated history.
    """
    history: list[dict] = []
    if not fresh:
        try:
            with open(path, encoding="utf-8") as fh:
                prior = json.load(fh)
        except (OSError, json.JSONDecodeError):
            prior = None
        if isinstance(prior, dict) and "single" in prior:
            history = [h for h in prior.get("history", ())
                       if isinstance(h, dict)]
            history.append(_history_entry(prior))
    doc = {k: v for k, v in report.items() if k != "history"}
    doc["history"] = history
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
