"""Overall-speedup metric — Equation (1) of the paper.

The paper adopts the end-to-end metric of Zhang et al. [27]: transferring a
field of size ``S`` over a medium of bandwidth ``BW`` takes ``S/BW``
seconds raw; with compression it takes ``S/(BW*CR)`` (moving the compressed
bytes) plus ``S/T_compr`` (producing them).  Overall speedup is the ratio::

    speedup = 1 / ((BW*CR)^-1 + T^-1) / BW  =  1 / (1/CR + BW/T)

A compressor helps (>1) only when its throughput sufficiently exceeds the
effective bandwidth gain — e.g. at CR=2 over a 100 GB/s link it must run
faster than 200 GB/s.
"""

from __future__ import annotations

from ..errors import ConfigError


def overall_speedup(cr: float, throughput: float, bandwidth: float) -> float:
    """Equation (1).

    Parameters
    ----------
    cr:
        compression ratio (dimensionless).
    throughput:
        compression throughput in bytes/second (uncompressed bytes processed
        per second).
    bandwidth:
        bandwidth of the transfer medium in bytes/second (the paper uses
        measured loaded GPU<->CPU bandwidth from Table 1).
    """
    if cr <= 0 or throughput <= 0 or bandwidth <= 0:
        raise ConfigError("cr, throughput and bandwidth must be positive")
    return 1.0 / (1.0 / cr + bandwidth / throughput)


def required_cr(throughput: float, bandwidth: float,
                target_speedup: float = 1.0) -> float:
    """CR needed to reach ``target_speedup`` at a given throughput.

    Inverts Equation (1): ``CR = 1 / (1/S - BW/T)``.  Returns ``inf`` when
    the target is unreachable at any ratio (the compressor is simply too
    slow: ``BW/T >= 1/S``).
    """
    if throughput <= 0 or bandwidth <= 0 or target_speedup <= 0:
        raise ConfigError("throughput, bandwidth and target must be positive")
    denom = 1.0 / target_speedup - bandwidth / throughput
    if denom <= 0.0:
        return float("inf")
    return 1.0 / denom


def breakeven_throughput(cr: float, bandwidth: float) -> float:
    """Throughput at which Equation (1) crosses 1.0 for a given CR.

    Solving ``1/CR + BW/T = 1`` gives ``T = BW * CR / (CR - 1)``; compression
    with CR <= 1 can never win, so this returns ``inf`` there.
    """
    if cr <= 1.0:
        return float("inf")
    if bandwidth <= 0:
        raise ConfigError("bandwidth must be positive")
    return bandwidth * cr / (cr - 1.0)
