"""Size metrics: compression ratio and bit rate (Table 3 / Figure 4 axes)."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """CR = input size / compressed size (the paper's definition)."""
    if original_bytes <= 0 or compressed_bytes <= 0:
        raise ConfigError("sizes must be positive")
    return original_bytes / compressed_bytes


def bit_rate(original_elements: int, compressed_bytes: int) -> float:
    """Average stored bits per input value (Figure 4's x-axis)."""
    if original_elements <= 0 or compressed_bytes < 0:
        raise ConfigError("element count must be positive")
    return compressed_bytes * 8.0 / original_elements


def bit_rate_from_ratio(cr: float, dtype: np.dtype) -> float:
    """Bit rate implied by a CR for a given element width."""
    if cr <= 0:
        raise ConfigError("compression ratio must be positive")
    return np.dtype(dtype).itemsize * 8.0 / cr
