"""Reconstruction-quality metrics (rate-distortion axes of Figure 4).

PSNR follows the convention of the compression literature the paper cites:
peak = value range of the *original* data, MSE over all elements.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError


def _pair(original: np.ndarray, reconstructed: np.ndarray
          ) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ConfigError("empty arrays")
    return a, b


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """L-infinity reconstruction error (what an error bound constrains)."""
    a, b = _pair(original, reconstructed)
    return float(np.abs(a - b).max())


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two fields."""
    a, b = _pair(original, reconstructed)
    d = a - b
    return float(np.mean(d * d))


def value_range(data: np.ndarray) -> float:
    """max(data) - min(data), the PSNR peak convention."""
    a = np.asarray(data, dtype=np.float64)
    return float(a.max() - a.min())


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB; +inf for exact reconstruction."""
    e = mse(original, reconstructed)
    rng = value_range(original)
    if e == 0.0:
        return math.inf
    if rng == 0.0:
        return -math.inf if e > 0 else math.inf
    return float(20.0 * math.log10(rng) - 10.0 * math.log10(e))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalised by the value range."""
    rng = value_range(original)
    if rng == 0.0:
        return 0.0 if mse(original, reconstructed) == 0 else math.inf
    return float(math.sqrt(mse(original, reconstructed)) / rng)


def error_bound_tolerance(reconstructed: np.ndarray, eb_abs: float) -> float:
    """The bound a finite-precision codec can actually honour.

    The decompressor computes ``x̂ = cast(pred + 2·eb·k)``: exact arithmetic
    guarantees ``|x − (pred + 2·eb·k)| ≤ eb``, and the final cast to the
    storage dtype adds at most half an ulp of the value's magnitude.  (Real
    float32 codecs — cuSZ, SZ3 — have the same property.)
    """
    r = np.asarray(reconstructed)
    eps = float(np.finfo(r.dtype).eps) if r.dtype.kind == "f" else 0.0
    mag = float(np.abs(r).max()) if r.size else 0.0
    return eb_abs * (1.0 + 1e-9) + mag * eps


def verify_error_bound(original: np.ndarray, reconstructed: np.ndarray,
                       eb_abs: float) -> bool:
    """Check the error-bound contract with ulp-aware tolerance
    (see :func:`error_bound_tolerance`)."""
    return (max_abs_error(original, reconstructed)
            <= error_bound_tolerance(reconstructed, eb_abs))
