"""Post-analysis quality metrics beyond PSNR.

§4.3.3's point is that visualisation tolerates far more loss than
quantitative post-analysis.  These metrics quantify the analysis-facing
properties practitioners actually check before adopting a lossy setting:

* :func:`ssim` — structural similarity (windowed, any rank 1-3);
* :func:`spectral_fidelity` — how well the isotropic power spectrum is
  preserved (turbulence/cosmology statistics live here);
* :func:`gradient_fidelity` — PSNR of the first differences (derived
  fields such as vorticity amplify high-frequency compression noise);
* :func:`histogram_intersection` — distribution preservation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .quality import _pair


def _window_means(a: np.ndarray, w: int) -> np.ndarray:
    """Non-overlapping ``w``-window means along every axis (crops tails)."""
    sl = tuple(slice(0, (n // w) * w) for n in a.shape)
    a = a[sl]
    for axis in range(a.ndim):
        shape = list(a.shape)
        shape[axis] = a.shape[axis] // w
        shape.insert(axis + 1, w)
        a = a.reshape(shape).mean(axis=axis + 1)
    return a


def ssim(original: np.ndarray, reconstructed: np.ndarray,
         window: int = 8) -> float:
    """Mean structural similarity over non-overlapping windows.

    The standard SSIM formula with the conventional stabilisers
    (k1=0.01, k2=0.03) against the data range; windows are
    non-overlapping (the cheap variant — adequate for ranking codecs).
    """
    a, b = _pair(original, reconstructed)
    if window < 2:
        raise ConfigError("window must be >= 2")
    if any(n < window for n in a.shape):
        raise ConfigError(f"field smaller than the {window}-wide window")
    rng = float(a.max() - a.min())
    if rng == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    c1 = (0.01 * rng) ** 2
    c2 = (0.03 * rng) ** 2

    mu_a = _window_means(a, window)
    mu_b = _window_means(b, window)
    mu_aa = _window_means(a * a, window)
    mu_bb = _window_means(b * b, window)
    mu_ab = _window_means(a * b, window)
    var_a = np.maximum(mu_aa - mu_a * mu_a, 0.0)
    var_b = np.maximum(mu_bb - mu_b * mu_b, 0.0)
    cov = mu_ab - mu_a * mu_b
    s = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)
         / ((mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)))
    return float(s.mean())


def _isotropic_spectrum(a: np.ndarray, nbins: int) -> np.ndarray:
    spec = np.abs(np.fft.rfftn(a)) ** 2
    freqs = np.meshgrid(*[np.fft.fftfreq(n) for n in a.shape[:-1]]
                        + [np.fft.rfftfreq(a.shape[-1])], indexing="ij")
    k = np.sqrt(sum(g * g for g in freqs))
    bins = np.linspace(0, 0.5, nbins + 1)
    power = np.zeros(nbins)
    idx = np.clip(np.digitize(k.reshape(-1), bins) - 1, 0, nbins - 1)
    np.add.at(power, idx, spec.reshape(-1))
    return power


def spectral_fidelity(original: np.ndarray, reconstructed: np.ndarray,
                      nbins: int = 16) -> float:
    """1 minus the mean relative error of the binned power spectrum.

    1.0 = spectrum perfectly preserved; values sink toward 0 when
    compression noise injects (or removes) power at some scale.
    """
    a, b = _pair(original, reconstructed)
    pa = _isotropic_spectrum(a, nbins)
    pb = _isotropic_spectrum(b, nbins)
    mask = pa > 0
    if not mask.any():
        return 1.0
    rel = np.abs(pb[mask] - pa[mask]) / pa[mask]
    return float(max(0.0, 1.0 - rel.mean()))


def gradient_fidelity(original: np.ndarray, reconstructed: np.ndarray
                      ) -> float:
    """PSNR of the concatenated first differences along every axis (dB).

    Differentiation amplifies high-frequency error, so this is strictly
    harsher than plain PSNR — the metric that punishes noisy
    reconstructions derived quantities would suffer from.
    """
    a, b = _pair(original, reconstructed)
    diffs_a = [np.diff(a, axis=ax).reshape(-1) for ax in range(a.ndim)]
    diffs_b = [np.diff(b, axis=ax).reshape(-1) for ax in range(b.ndim)]
    da = np.concatenate(diffs_a)
    db = np.concatenate(diffs_b)
    err = float(np.mean((da - db) ** 2))
    rng = float(da.max() - da.min())
    if err == 0.0:
        return float("inf")
    if rng == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(rng) - 10.0 * np.log10(err))


def histogram_intersection(original: np.ndarray, reconstructed: np.ndarray,
                           nbins: int = 64) -> float:
    """Overlap of normalised value histograms (1.0 = identical)."""
    a, b = _pair(original, reconstructed)
    lo = min(float(a.min()), float(b.min()))
    hi = max(float(a.max()), float(b.max()))
    if hi == lo:
        return 1.0
    ha, _ = np.histogram(a, bins=nbins, range=(lo, hi))
    hb, _ = np.histogram(b, bins=nbins, range=(lo, hi))
    ha = ha / ha.sum()
    hb = hb / hb.sum()
    return float(np.minimum(ha, hb).sum())
