"""Throughput helpers (GB/s accounting used by Figures 1-3)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

GB = 1e9


def throughput_bps(uncompressed_bytes: int, seconds: float) -> float:
    """Uncompressed bytes processed per second (the paper's convention)."""
    if seconds <= 0:
        raise ConfigError("elapsed time must be positive")
    if uncompressed_bytes <= 0:
        raise ConfigError("byte count must be positive")
    return uncompressed_bytes / seconds


def gbps(bps: float) -> float:
    """Bytes/second -> GB/s (decimal, as in the paper's figures)."""
    return bps / GB


@dataclass(frozen=True)
class ThroughputSample:
    """A (compression, decompression) throughput observation in bytes/s."""

    compress_bps: float
    decompress_bps: float

    @property
    def compress_gbps(self) -> float:
        return gbps(self.compress_bps)

    @property
    def decompress_gbps(self) -> float:
        return gbps(self.decompress_bps)
