"""Evaluation metrics: ratio, quality, throughput, overall speedup, and
post-analysis fidelity (SSIM, spectra, gradients)."""

from .advanced import (gradient_fidelity, histogram_intersection,
                       spectral_fidelity, ssim)
from .quality import (error_bound_tolerance, max_abs_error, mse, nrmse,
                      psnr, value_range, verify_error_bound)
from .ratio import bit_rate, bit_rate_from_ratio, compression_ratio
from .speedup import breakeven_throughput, overall_speedup, required_cr
from .throughput import GB, ThroughputSample, gbps, throughput_bps

__all__ = [
    "gradient_fidelity", "histogram_intersection", "spectral_fidelity",
    "ssim",
    "error_bound_tolerance", "max_abs_error", "mse", "nrmse", "psnr",
    "value_range",
    "verify_error_bound", "bit_rate", "bit_rate_from_ratio",
    "compression_ratio", "breakeven_throughput", "overall_speedup",
    "required_cr",
    "GB", "ThroughputSample", "gbps", "throughput_bps",
]
