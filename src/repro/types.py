"""Common enums and small value types shared across the framework.

These are deliberately dependency-free so that every subsystem (kernels,
runtime, core, baselines) can import them without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .errors import ConfigError

#: dtypes the compression pipelines accept as input fields.
SUPPORTED_DTYPES: tuple[np.dtype, ...] = (np.dtype(np.float32), np.dtype(np.float64))


class EbMode(str, enum.Enum):
    """Error-bound interpretation.

    ABS
        The user bound is an absolute tolerance: ``max|x - x'| <= eb``.
    REL
        Value-range relative: the effective absolute bound is
        ``eb * (max(x) - min(x))``.  This is the mode used throughout the
        paper's evaluation ("value-range-based relative error bound";
        PFPL calls it point-wise normalized absolute error, NOA).
    """

    ABS = "abs"
    REL = "rel"


class Stage(str, enum.Enum):
    """The four pipeline stages of §3.3 of the paper."""

    PREPROCESS = "preprocess"
    PREDICTOR = "predictor"
    STATISTICS = "statistics"
    ENCODER = "encoder"
    SECONDARY = "secondary"


class DeviceKind(str, enum.Enum):
    """Kind of simulated execution resource."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class ErrorBound:
    """A fully-specified error bound.

    Attributes
    ----------
    value:
        The user-provided bound (must be positive and finite).
    mode:
        How ``value`` is interpreted (:class:`EbMode`).
    """

    value: float
    mode: EbMode = EbMode.REL

    def __post_init__(self) -> None:
        if not np.isfinite(self.value) or self.value <= 0.0:
            raise ConfigError(f"error bound must be positive and finite, got {self.value!r}")
        if not isinstance(self.mode, EbMode):
            object.__setattr__(self, "mode", EbMode(self.mode))

    def absolute(self, data_min: float, data_max: float) -> float:
        """Resolve to an absolute tolerance given the data range.

        In REL mode a constant field (zero range) degenerates to the raw
        value so that compression of constant data still works.
        """
        if self.mode is EbMode.ABS:
            return float(self.value)
        rng = float(data_max) - float(data_min)
        if rng <= 0.0 or not np.isfinite(rng):
            return float(self.value)
        return float(self.value) * rng


def check_field(data: np.ndarray) -> np.ndarray:
    """Validate an input field for compression.

    Returns a C-contiguous view/copy of ``data``.  Raises
    :class:`~repro.errors.ConfigError` for unsupported dtypes, empty arrays
    or rank > 3 (the predictors implement 1-D, 2-D and 3-D stencils, as in
    cuSZ).
    """
    arr = np.asarray(data)
    if arr.dtype not in SUPPORTED_DTYPES:
        raise ConfigError(f"unsupported dtype {arr.dtype}; expected one of {SUPPORTED_DTYPES}")
    if arr.size == 0:
        raise ConfigError("cannot compress an empty array")
    if arr.ndim < 1 or arr.ndim > 3:
        raise ConfigError(f"only 1-D/2-D/3-D fields are supported, got ndim={arr.ndim}")
    if not np.isfinite(arr).all():
        raise ConfigError("input field contains NaN or Inf; error-bounded lossy "
                          "compression of non-finite values is undefined")
    return np.ascontiguousarray(arr)
