"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the framework derives from :class:`FZModError` so that
callers can catch framework failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class FZModError(Exception):
    """Base class for every error raised by the framework."""


class ConfigError(FZModError):
    """An invalid configuration value was supplied (bad error bound, unknown
    error-bound mode, unsupported dtype, ...)."""


class PipelineError(FZModError):
    """Pipeline composition or execution failed (incompatible module stages,
    missing required artifact, ...)."""


class ModuleNotFoundInRegistry(FZModError):
    """A module name passed to the registry/builder is not registered."""


class CodecError(FZModError):
    """A lossless codec failed to encode or decode a payload."""


class HeaderError(FZModError):
    """A compressed container header is malformed or version-incompatible."""


class DeviceError(FZModError):
    """An operation referenced an unknown device or an invalid memory
    space (e.g. launching a GPU kernel on a host-only buffer)."""


class TransferError(FZModError):
    """A host/device transfer was requested between incompatible spaces."""


class StfError(FZModError):
    """The sequential-task-flow engine rejected a task graph (cycle, access
    to a destroyed logical datum, use of a finalized context, ...)."""


class DataError(FZModError):
    """A dataset loader/generator was asked for something it cannot
    produce (unknown dataset name, bad field, corrupt file, ...)."""


class SanitizerError(FZModError):
    """The runtime contract sanitizer (``FZMOD_SANITIZE=1``) caught a
    memory-contract violation at a kernel or pool boundary: a buffer
    used after its pool lease was released, a lease released twice, or
    an ``out=`` destination that aliases an input array."""
