"""Multidimensional Lorenzo predictor (cuSZ construction, vectorised).

cuSZ's Lorenzo kernel combines *pre-quantization* with the Lorenzo
finite-difference operator: the input is first snapped to the integer grid
``2*eb`` (see :mod:`repro.kernels.quantize`), then the d-dimensional Lorenzo
residual is taken **on the integers**.  Because the d-dimensional Lorenzo
operator factorises into a composition of 1-D backward differences along
each axis, the forward transform is ``d`` vectorised ``diff`` passes and the
inverse is ``d`` ``cumsum`` passes — both embarrassingly parallel /
scan-parallel, exactly the property the GPU kernel exploits.

The identity used::

    L_d = D_0 ∘ D_1 ∘ ... ∘ D_{d-1}          (D_a = backward diff along axis a)
    L_d^{-1} = S_{d-1} ∘ ... ∘ S_0           (S_a = inclusive scan along axis a)

Expanding ``D_0∘D_1`` for 2-D gives the familiar
``x[i,j] - x[i-1,j] - x[i,j-1] + x[i-1,j-1]`` Lorenzo stencil, and the 3-D
expansion yields the 7-point cuSZ stencil.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from ..obs.spans import span
from ..runtime.memory import SANITIZER
from . import quantize as q


def lorenzo_forward(grid: np.ndarray, *, out: np.ndarray | None = None,
                    scratch: np.ndarray | None = None) -> np.ndarray:
    """Apply the d-D Lorenzo difference operator to an integer grid.

    Boundary semantics: values outside the array are treated as zero, so the
    first element along each axis keeps its value (matching cuSZ's
    "first element predicts from 0" behaviour).

    ``out`` receives the residuals (``out=grid`` differentiates in place,
    clobbering the input) and ``scratch`` (``int64``, grid-shaped) carries
    the shifted copy each axis pass needs; with both supplied the operator
    allocates nothing instead of two grid-sized temporaries per axis.
    """
    if SANITIZER.enabled:
        SANITIZER.check_live("lorenzo_forward", grid, out, scratch)
        SANITIZER.check_no_alias("lorenzo_forward", out, grid=grid)
        SANITIZER.check_no_alias("lorenzo_forward(scratch)", scratch,
                                 grid=grid, out=out, allow_identical=False)
    grid = np.asarray(grid)
    if grid.dtype != np.int64:
        grid = grid.astype(np.int64)
    if out is None:
        out = grid.copy()
    elif out is not grid:
        out[...] = grid
    shifted = np.empty_like(out) if scratch is None else scratch
    for axis in range(out.ndim):
        src = [slice(None)] * out.ndim
        dst = [slice(None)] * out.ndim
        first = [slice(None)] * out.ndim
        src[axis] = slice(None, -1)
        dst[axis] = slice(1, None)
        first[axis] = slice(0, 1)
        shifted[tuple(dst)] = out[tuple(src)]
        shifted[tuple(first)] = 0
        np.subtract(out, shifted, out=out)
    return out


def lorenzo_inverse(deltas: np.ndarray, *,
                    out: np.ndarray | None = None) -> np.ndarray:
    """Invert :func:`lorenzo_forward` via successive inclusive scans.

    ``out=deltas`` scans in place (clobbering the input); the default
    allocates one working copy and scans inside it, instead of one fresh
    array per axis.
    """
    if SANITIZER.enabled:
        SANITIZER.check_live("lorenzo_inverse", deltas, out)
        SANITIZER.check_no_alias("lorenzo_inverse", out, deltas=deltas)
    deltas = np.asarray(deltas, dtype=np.int64)
    if out is None:
        out = deltas.copy()
    elif out is not deltas:
        out[...] = deltas
    for axis in range(out.ndim - 1, -1, -1):
        np.cumsum(out, axis=axis, out=out)
    return out


@dataclass(frozen=True)
class LorenzoResult:
    """Artifacts produced by the Lorenzo predictor stage.

    Attributes
    ----------
    codes:
        dense unsigned quant-code array (``uint16``/``uint32``), shape of the
        input; alphabet ``[0, 2*radius)`` with ``radius`` == zero residual.
    outliers:
        sparse unpredictable residuals.
    radius:
        the code radius used.
    eb_abs:
        the absolute error bound actually applied.
    shape / dtype:
        original field geometry, needed for reconstruction.
    """

    codes: np.ndarray
    outliers: q.OutlierSet
    radius: int
    eb_abs: float
    shape: tuple[int, ...]
    dtype: np.dtype


def compress(data: np.ndarray, eb_abs: float, radius: int = q.DEFAULT_RADIUS
             ) -> LorenzoResult:
    """Predict + quantise a field with the Lorenzo scheme.

    The returned artifacts reconstruct the field to within ``eb_abs``
    (guaranteed: pre-quantization bounds the error; prediction on integers
    is exact).  Scratch (the integer grid, the shift buffer and the scaled
    float intermediate) is drawn from the runtime buffer pool when enabled,
    so repeated same-shape calls — the sharded engine's steady state —
    allocate nothing on this path.
    """
    from ..runtime.memory import default_pool
    data = np.asarray(data)
    with span("kernel.lorenzo.compress", elements=int(data.size),
              bytes_in=int(data.nbytes)) as sp:
        pool = default_pool()
        if pool is None:
            grid = q.prequantize(data, eb_abs)
            deltas = lorenzo_forward(grid, out=grid)
            codes, outliers = q.split_outliers(deltas, radius, in_place=True)
        else:
            scaled = pool.acquire(data.shape, np.float64)
            grid = pool.acquire(data.shape, np.int64)
            shifted = pool.acquire(data.shape, np.int64)
            try:
                q.prequantize(data, eb_abs, out=grid, scratch=scaled)
                deltas = lorenzo_forward(grid, out=grid, scratch=shifted)
                codes, outliers = q.split_outliers(deltas, radius,
                                                   in_place=True)
            finally:
                pool.release(scaled)
                pool.release(shifted)
                pool.release(grid)
        sp.set(bytes_out=int(codes.nbytes))
        return LorenzoResult(codes=codes, outliers=outliers, radius=radius,
                             eb_abs=float(eb_abs), shape=data.shape,
                             dtype=data.dtype)


def decompress(result: LorenzoResult, *,
               out: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct the field from Lorenzo artifacts.

    ``out`` receives the dequantised field when given (shape/dtype
    matching the artifacts) and is returned; otherwise exactly one
    writable array is materialised for the caller.  The integer
    residual/scan buffer is pooled scratch when the runtime pool is
    enabled.
    """
    from ..runtime.memory import default_pool
    pool = default_pool()
    shape = tuple(result.shape)
    recon = np.empty(shape, dtype=result.dtype) if out is None else out
    with span("kernel.lorenzo.decompress", elements=int(recon.size),
              bytes_in=int(result.codes.nbytes),
              bytes_out=int(recon.nbytes)):
        if pool is None:
            deltas = q.merge_outliers(result.codes, result.outliers,
                                      result.radius)
            if deltas.shape != shape:
                deltas = deltas.reshape(shape)
            grid = lorenzo_inverse(deltas, out=deltas)
            return q.dequantize(grid, result.eb_abs, result.dtype, out=recon)
        work = pool.acquire(shape, np.int64)
        try:
            deltas = q.merge_outliers(result.codes, result.outliers,
                                      result.radius, out=work)
            if deltas.shape != shape:
                deltas = deltas.reshape(shape)
            grid = lorenzo_inverse(deltas, out=deltas)
            q.dequantize(grid, result.eb_abs, result.dtype, out=recon)
        finally:
            pool.release(work)
        return recon


def decompress_parts(codes: np.ndarray, outliers: q.OutlierSet, radius: int,
                     eb_abs: float, shape: tuple[int, ...], dtype: np.dtype,
                     *, out: np.ndarray | None = None) -> np.ndarray:
    """Positional-artifact variant of :func:`decompress` used by STF tasks."""
    return decompress(LorenzoResult(codes=codes, outliers=outliers, radius=radius,
                                    eb_abs=eb_abs, shape=tuple(shape),
                                    dtype=np.dtype(dtype)), out=out)


def offset1d_forward(grid: np.ndarray) -> np.ndarray:
    """1-D offset (previous-value) prediction over the *flattened* field.

    This is cuSZp2's predictor: regardless of the logical rank, the field is
    treated as a flat sequence and each value is predicted by its
    predecessor.  Cheap (one pass, fuses trivially) but weaker than the
    dimension-aware Lorenzo stencil — which is exactly the
    throughput-vs-ratio trade the paper discusses.
    """
    flat = np.asarray(grid, dtype=np.int64).reshape(-1)
    out = np.empty_like(flat)
    out[0] = flat[0]
    np.subtract(flat[1:], flat[:-1], out=out[1:])
    return out


def offset1d_inverse(deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`offset1d_forward` (an inclusive scan)."""
    return np.cumsum(np.asarray(deltas, dtype=np.int64))


def validate_radius(radius: int) -> int:
    """Shared radius validation for modules exposing it as a knob."""
    if not (1 <= radius <= 2**20):
        raise CodecError(f"quant-code radius {radius} outside supported range")
    return int(radius)
