"""Reference LZ77 codec (greedy hash-table matcher).

The token-dedup codec in :mod:`repro.kernels.lz` only catches *aligned*
8-byte repetition; this is the classic sliding-window matcher that catches
unaligned repeats, used as a page mode by the Bitcomp-role secondary codec
and available standalone for small payloads.

Format (little-endian): a sequence of ops until the stream ends::

    0x00 | u16 len | len literal bytes
    0x01 | u16 offset (1-based, <= 32768) | u8 length (4..255)

The encoder is a straightforward greedy matcher with a 4-byte-hash
position table.  It is a *Python-loop* codec — O(n) interpreter steps —
so it is deliberately only applied to bounded pages (the caller's job);
decode copies may overlap (run-length-through-match), handled by
byte-incremental copying, exactly as in DEFLATE decoders.
"""

from __future__ import annotations

import struct

from ..errors import CodecError

WINDOW = 32768
MIN_MATCH = 4
MAX_MATCH = 255
#: guardrail: refuse inputs where the Python-loop cost would be silly
MAX_INPUT = 1 << 20


def encode(data: bytes) -> bytes:
    """Greedy LZ77 encode (lossless)."""
    n = len(data)
    if n > MAX_INPUT:
        raise CodecError(f"lz77 reference codec is capped at {MAX_INPUT} "
                         "bytes per call; page your input")
    out = bytearray()
    lit_start = 0
    table: dict[bytes, int] = {}
    i = 0

    def flush_literals(upto: int) -> None:
        nonlocal lit_start, out
        pos = lit_start
        while pos < upto:
            run = min(upto - pos, 0xFFFF)
            out.append(0x00)
            out += struct.pack("<H", run)
            out += data[pos:pos + run]
            pos += run
        lit_start = upto

    while i + MIN_MATCH <= n:
        key = data[i:i + MIN_MATCH]
        cand = table.get(key)
        table[key] = i
        if cand is not None and i - cand <= WINDOW:
            # extend the match
            length = MIN_MATCH
            max_len = min(MAX_MATCH, n - i)
            while (length < max_len
                   and data[cand + length] == data[i + length]):
                length += 1
            flush_literals(i)
            out.append(0x01)
            out += struct.pack("<HB", i - cand, length)
            i += length
            lit_start = i
        else:
            i += 1
    flush_literals(n)
    return bytes(out)


def decode(payload: bytes) -> bytes:
    """Inverse of :func:`encode`."""
    out = bytearray()
    pos = 0
    n = len(payload)
    while pos < n:
        op = payload[pos]
        pos += 1
        if op == 0x00:
            if pos + 2 > n:
                raise CodecError("truncated lz77 literal header")
            (run,) = struct.unpack_from("<H", payload, pos)
            pos += 2
            if pos + run > n:
                raise CodecError("truncated lz77 literal run")
            out += payload[pos:pos + run]
            pos += run
        elif op == 0x01:
            if pos + 3 > n:
                raise CodecError("truncated lz77 match")
            offset, length = struct.unpack_from("<HB", payload, pos)
            pos += 3
            if offset == 0 or offset > len(out):
                raise CodecError("lz77 match offset out of range")
            start = len(out) - offset
            if offset >= length:
                out += out[start:start + length]
            else:
                # overlapping copy: byte-incremental, DEFLATE semantics
                for k in range(length):
                    out.append(out[start + k])
        else:
            raise CodecError(f"unknown lz77 op {op}")
    return bytes(out)
