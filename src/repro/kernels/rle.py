"""Byte-level run-length coder (zero-run elimination helper).

A small, exact codec used as an alternative secondary-stage module and by
tests as a simple reference backend.  Runs of any byte are encoded as
``(byte, varint-length)``; literals pass through in escaped segments.

Format (all little-endian):
``[u8 tag]`` per segment: ``0x00`` literal segment -> ``u32 len`` + bytes;
``0x01`` run segment -> ``u8 value`` + ``u32 count``.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError

_MIN_RUN = 8


def encode(data: bytes) -> bytes:
    """Run-length encode ``data`` (lossless)."""
    buf = np.frombuffer(data, dtype=np.uint8)
    if buf.size == 0:
        return b""
    # Boundaries of equal-value runs.
    change = np.flatnonzero(np.diff(buf)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [buf.size]))
    lengths = ends - starts
    out: list[bytes] = []
    lit_start = 0

    def flush_literal(upto: int) -> None:
        nonlocal lit_start
        if upto > lit_start:
            seg = buf[lit_start:upto].tobytes()
            out.append(b"\x00" + struct.pack("<I", len(seg)) + seg)
        lit_start = upto

    for s, ln in zip(starts, lengths):
        if ln >= _MIN_RUN:
            flush_literal(int(s))
            out.append(b"\x01" + bytes([int(buf[s])]) + struct.pack("<I", int(ln)))
            lit_start = int(s + ln)
    flush_literal(buf.size)
    return b"".join(out)


def decode(payload: bytes) -> bytes:
    """Inverse of :func:`encode`."""
    out: list[bytes] = []
    pos = 0
    n = len(payload)
    while pos < n:
        tag = payload[pos]
        pos += 1
        if tag == 0x00:
            if pos + 4 > n:
                raise CodecError("truncated RLE literal header")
            (ln,) = struct.unpack_from("<I", payload, pos)
            pos += 4
            if pos + ln > n:
                raise CodecError("truncated RLE literal segment")
            out.append(payload[pos:pos + ln])
            pos += ln
        elif tag == 0x01:
            if pos + 5 > n:
                raise CodecError("truncated RLE run segment")
            value = payload[pos]
            (count,) = struct.unpack_from("<I", payload, pos + 1)
            pos += 5
            out.append(bytes([value]) * count)
        else:
            raise CodecError(f"unknown RLE segment tag {tag}")
    return b"".join(out)
