"""Delta coding (PFPL building block).

PFPL chains an efficient quantiser with delta coding so that smooth data
turns into long runs of zeros before bit-shuffle + zero elimination.  The
forward transform is a backward difference over the flattened stream; the
inverse is an inclusive scan — both single vectorised passes.
"""

from __future__ import annotations

import numpy as np

from ..runtime.memory import SANITIZER


def delta_forward(values: np.ndarray, *,
                  out: np.ndarray | None = None) -> np.ndarray:
    """First-order backward difference over the flattened array (int64).

    ``out`` (``int64``, at least ``values.size`` elements, distinct from
    ``values``) receives the differences, making the call allocation-free
    for pooled callers.
    """
    if SANITIZER.enabled:
        SANITIZER.check_live("delta_forward", values, out)
        SANITIZER.check_no_alias("delta_forward", out, values=values,
                                 allow_identical=False)
    flat = np.asarray(values, dtype=np.int64).reshape(-1)
    out = np.empty_like(flat) if out is None else out.reshape(-1)[:flat.size]
    if flat.size:
        out[0] = flat[0]
        np.subtract(flat[1:], flat[:-1], out=out[1:])
    return out


def delta_inverse(deltas: np.ndarray, *,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Inverse of :func:`delta_forward` (an inclusive scan).

    ``out=deltas`` scans in place (clobbering the input).
    """
    if SANITIZER.enabled:
        SANITIZER.check_live("delta_inverse", deltas, out)
        SANITIZER.check_no_alias("delta_inverse", out, deltas=deltas)
    flat = np.asarray(deltas, dtype=np.int64).reshape(-1)
    if out is None:
        return np.cumsum(flat)
    out = out.reshape(-1)[:flat.size]
    return np.cumsum(flat, out=out)


def delta2_forward(values: np.ndarray) -> np.ndarray:
    """Second-order difference (delta applied twice); used by PFPL variants
    on very smooth fields where first differences are still correlated."""
    return delta_forward(delta_forward(values))


def delta2_inverse(deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta2_forward`."""
    return delta_inverse(delta_inverse(deltas))
