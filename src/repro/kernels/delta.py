"""Delta coding (PFPL building block).

PFPL chains an efficient quantiser with delta coding so that smooth data
turns into long runs of zeros before bit-shuffle + zero elimination.  The
forward transform is a backward difference over the flattened stream; the
inverse is an inclusive scan — both single vectorised passes.
"""

from __future__ import annotations

import numpy as np


def delta_forward(values: np.ndarray) -> np.ndarray:
    """First-order backward difference over the flattened array (int64)."""
    flat = np.asarray(values, dtype=np.int64).reshape(-1)
    out = np.empty_like(flat)
    if flat.size:
        out[0] = flat[0]
        np.subtract(flat[1:], flat[:-1], out=out[1:])
    return out


def delta_inverse(deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_forward` (an inclusive scan)."""
    return np.cumsum(np.asarray(deltas, dtype=np.int64))


def delta2_forward(values: np.ndarray) -> np.ndarray:
    """Second-order difference (delta applied twice); used by PFPL variants
    on very smooth fields where first differences are still correlated."""
    return delta_forward(delta_forward(values))


def delta2_inverse(deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta2_forward`."""
    return delta_inverse(delta_inverse(deltas))
