"""Multilevel spline-interpolation predictor (G-Interp, cuSZ-i construction).

The predictor walks a hierarchy of grids from coarse to fine.  *Anchor*
points on the coarsest grid (stride ``2**max_level`` along every axis) are
stored losslessly, exactly as cuSZ-i does.  Each level then predicts the
midpoints of the current grid axis-by-axis using a 4-point cubic
interpolation stencil (falling back to linear / nearest at boundaries),
quantises the prediction residual with the shared error-controlled
quantiser, and immediately commits the *reconstructed* value so finer
levels predict from exactly what the decompressor will see.

Within one ``(level, axis)`` batch no predicted point depends on another —
every stencil tap lies on the already-known coarser grid — so each batch is
a single vectorised gather/scatter, mirroring the data-parallel formulation
of the CUDA kernel.

Compared with Lorenzo this predictor is markedly more accurate on smooth
fields (higher CR / better rate-distortion) at the cost of ``O(levels·dims)``
kernel passes instead of one — which is precisely the FZMod-Quality vs
FZMod-Default trade-off evaluated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from ..obs.spans import span
from . import quantize as q

#: Default maximum level (anchor stride = 2**level) per rank.  Chosen so the
#: raw-anchor overhead stays negligible: 3-D -> 1/4096, 2-D -> 1/1024,
#: 1-D -> 1/256 of the input.
_DEFAULT_MAX_LEVEL = {1: 8, 2: 5, 3: 4}


def default_max_level(ndim: int) -> int:
    """Default level count for a given rank (see module constants)."""
    try:
        return _DEFAULT_MAX_LEVEL[ndim]
    except KeyError:  # pragma: no cover - guarded by check_field
        raise CodecError(f"unsupported rank {ndim}") from None


@dataclass(frozen=True)
class InterpResult:
    """Artifacts of the interpolation predictor stage.

    ``choices`` is empty for the static (always-cubic) predictor; in
    dynamic mode it records, per (level, axis) batch, which stencil won
    (0 = cubic-with-fallbacks, 1 = linear) — the decoder must replay the
    exact same choices.
    """

    codes: np.ndarray          # dense unsigned quant codes, 1-D stream
    outliers: q.OutlierSet
    anchors: np.ndarray        # raw anchor values (input dtype), 1-D
    radius: int
    eb_abs: float
    max_level: int
    shape: tuple[int, ...]
    dtype: np.dtype
    choices: tuple[int, ...] = ()


def _anchor_slices(shape: tuple[int, ...], stride: int) -> tuple[slice, ...]:
    return tuple(slice(0, n, stride) for n in shape)


def _batches(shape: tuple[int, ...], max_level: int):
    """Yield the deterministic (level, axis, coordinate-vectors) schedule.

    For a batch at ``(level, axis)`` with ``s = 2**level`` and ``h = s//2``:
    the predicted points have coordinate ``c ≡ h (mod s)`` along ``axis``,
    coordinates that are multiples of ``h`` along axes *before* ``axis``
    (those axes were refined first at this level) and multiples of ``s``
    along axes *after* it.
    """
    ndim = len(shape)
    for level in range(max_level, 0, -1):
        s = 1 << level
        h = s >> 1
        for axis in range(ndim):
            coords: list[np.ndarray] = []
            for a, n in enumerate(shape):
                if a == axis:
                    c = np.arange(h, n, s, dtype=np.int64)
                elif a < axis:
                    c = np.arange(0, n, h, dtype=np.int64)
                else:
                    c = np.arange(0, n, s, dtype=np.int64)
                coords.append(c)
            if all(c.size for c in coords):
                yield level, axis, coords


def _predict_batch(recon: np.ndarray, axis: int, coords: list[np.ndarray],
                   h: int, linear_only: bool = False) -> np.ndarray:
    """Cubic/linear/nearest prediction for one batch (fully vectorised).

    All stencil taps along ``axis`` (at ``c ± h`` and ``c ± 3h``) lie on the
    coarser grid, and taps are gathered with ``np.ix_`` so the batch is one
    fancy-indexing read per tap.  ``linear_only`` skips the cubic stencil —
    the alternative the dynamic mode chooses on non-smooth batches, where
    cubic overshoot hurts.
    """
    n = recon.shape[axis]
    c = coords[axis]

    def tap(offset: int) -> np.ndarray:
        cc = np.clip(c + offset, 0, n - 1)
        ix = list(coords)
        ix[axis] = cc
        return recon[np.ix_(*ix)]

    left = tap(-h)
    right = tap(+h)
    lin = 0.5 * (left + right)

    # Masks depend only on the coordinate along `axis`; broadcast them.
    bshape = [1] * recon.ndim
    bshape[axis] = c.size
    has_right = (c + h <= n - 1).reshape(bshape)
    pred = np.where(has_right, lin, left)
    if linear_only:
        return pred
    has_cubic = ((c - 3 * h >= 0) & (c + 3 * h <= n - 1)).reshape(bshape)
    if bool(has_cubic.any()):
        far_l = tap(-3 * h)
        far_r = tap(+3 * h)
        cubic = (-far_l + 9.0 * left + 9.0 * right - far_r) / 16.0
        pred = np.where(has_cubic, cubic, pred)
    return pred


def compress(data: np.ndarray, eb_abs: float, radius: int = q.DEFAULT_RADIUS,
             max_level: int | None = None, dynamic: bool = False
             ) -> InterpResult:
    """Predict + quantise a field with multilevel interpolation.

    ``dynamic=True`` enables per-(level, axis) stencil selection (cubic vs
    linear, whichever quantises smaller residuals on that batch) — the
    dynamic-spline-interpolation idea of Zhao et al. [30] that SZ3 uses.
    The per-batch choices are recorded in the result and replayed by the
    decoder.
    """
    if eb_abs <= 0 or not np.isfinite(eb_abs):
        raise CodecError(f"absolute error bound must be positive, got {eb_abs}")
    data = np.asarray(data)
    shape = data.shape
    if max_level is None:
        max_level = default_max_level(data.ndim)
    if max_level < 1:
        raise CodecError("max_level must be >= 1")
    stride = 1 << max_level
    twoeb = 2.0 * eb_abs

    with span("kernel.interp.compress", elements=int(data.size),
              bytes_in=int(data.nbytes)) as kernel_sp:
        work = data.astype(np.float64, copy=False)
        recon = np.zeros(shape, dtype=np.float64)
        asl = _anchor_slices(shape, stride)
        recon[asl] = work[asl]
        anchors = data[asl].reshape(-1).copy()

        code_batches: list[np.ndarray] = []
        choices: list[int] = []
        for level, axis, coords in _batches(shape, max_level):
            h = 1 << (level - 1)
            true = work[np.ix_(*coords)]
            pred = _predict_batch(recon, axis, coords, h)
            if dynamic:
                pred_lin = _predict_batch(recon, axis, coords, h,
                                          linear_only=True)
                # pick the stencil whose quantised residuals are smaller in
                # total magnitude (a cheap proxy for entropy)
                cost_cubic = float(np.abs(np.rint((true - pred) / twoeb)).sum())
                cost_lin = float(np.abs(np.rint((true - pred_lin) / twoeb)).sum())
                if cost_lin < cost_cubic:
                    pred = pred_lin
                    choices.append(1)
                else:
                    choices.append(0)
            scaled = (true - pred) / twoeb
            if scaled.size and float(np.abs(scaled).max()) >= 2**62:
                raise CodecError("error bound too tight: interp code overflows int64")
            codes = np.rint(scaled).astype(np.int64)
            recon[np.ix_(*coords)] = pred + codes * twoeb
            code_batches.append(codes.reshape(-1))

        stream = (np.concatenate(code_batches) if code_batches
                  else np.zeros(0, dtype=np.int64))
        dense, outliers = q.split_outliers(stream, radius)
        kernel_sp.set(bytes_out=int(dense.nbytes + anchors.nbytes))
        return InterpResult(codes=dense, outliers=outliers, anchors=anchors,
                            radius=radius, eb_abs=float(eb_abs), max_level=max_level,
                            shape=shape, dtype=data.dtype,
                            choices=tuple(choices))


def decompress(result: InterpResult, *,
               out: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct the field from interpolation artifacts.

    Replays the exact batch schedule of :func:`compress`, consuming the code
    stream in order; float64 arithmetic matches the compressor so the
    reconstruction is bit-identical to the compressor's internal state.
    ``out`` receives the final dtype cast in place when given and is
    returned.
    """
    shape = tuple(result.shape)
    stride = 1 << result.max_level
    twoeb = 2.0 * result.eb_abs
    with span("kernel.interp.decompress",
              elements=int(np.prod(shape, dtype=np.int64)),
              bytes_in=int(result.codes.nbytes + result.anchors.nbytes)):
        stream = q.merge_outliers(result.codes, result.outliers, result.radius).reshape(-1)

        recon = np.zeros(shape, dtype=np.float64)
        asl = _anchor_slices(shape, stride)
        anchor_shape = tuple(len(range(0, n, stride)) for n in shape)
        recon[asl] = result.anchors.reshape(anchor_shape).astype(np.float64)

        pos = 0
        batch_no = 0
        for level, axis, coords in _batches(shape, result.max_level):
            h = 1 << (level - 1)
            linear_only = bool(result.choices
                               and result.choices[batch_no] == 1)
            pred = _predict_batch(recon, axis, coords, h,
                                  linear_only=linear_only)
            batch_no += 1
            count = pred.size
            codes = stream[pos:pos + count].reshape(pred.shape)
            pos += count
            recon[np.ix_(*coords)] = pred + codes * twoeb
        if pos != stream.size:
            raise CodecError(f"interp stream length mismatch: consumed {pos}, "
                             f"stream has {stream.size}")
        if out is None:
            return recon.astype(result.dtype)
        np.copyto(out, recon, casting="unsafe")
        return out
