"""Error-controlled linear quantisation (the cuSZ "dual-quantization" core).

Two flavours are provided:

* :func:`prequantize` / :func:`dequantize` — map floats to an integer grid
  with spacing ``2*eb`` so that reconstruction error is ``<= eb`` per value.
  This is the *pre-quantization* step of cuSZ's dual-quantization scheme:
  quantising the data **before** prediction removes the serial dependency of
  classic predictive coders (the predictor then operates on exact integers,
  so prediction + inverse-prediction is lossless) and is what makes the
  Lorenzo kernel embarrassingly parallel.

* :func:`split_outliers` / :func:`merge_outliers` — bound quant-code
  magnitudes to a radius ``R`` so downstream entropy coders see a small
  alphabet (``2R`` symbols); values falling outside become sparse
  *outliers* carried in a side channel.  In the paper's STF demo the
  outlier scatter runs concurrently with Huffman decode, so outliers are a
  first-class artifact here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from ..runtime.memory import SANITIZER

#: Default quant-code radius, matching cuSZ's default dictionary size 1024.
DEFAULT_RADIUS = 512


def prequantize(data: np.ndarray, eb_abs: float, *,
                out: np.ndarray | None = None,
                scratch: np.ndarray | None = None) -> np.ndarray:
    """Quantise ``data`` onto the grid ``2*eb_abs * k`` (k integer).

    Returns an ``int64`` array of grid indices.  ``|data - 2*eb*k| <= eb``
    holds for every element (round-half-away semantics are irrelevant to the
    bound).  ``int64`` is wide enough for any float32/64 field with a sane
    error bound; overflow (astronomically tight bounds) raises.

    ``out`` (``int64``, data-shaped) receives the grid indices and
    ``scratch`` (``float64``, data-shaped) holds the scaled intermediate;
    passing pooled buffers for both makes the call allocation-free.
    """
    if eb_abs <= 0 or not np.isfinite(eb_abs):
        raise CodecError(f"absolute error bound must be positive, got {eb_abs}")
    if SANITIZER.enabled:
        SANITIZER.check_live("prequantize", data, out, scratch)
        SANITIZER.check_no_alias("prequantize", out, data=data,
                                 scratch=scratch)
        SANITIZER.check_no_alias("prequantize(scratch)", scratch, data=data)
    data = np.asarray(data)
    if scratch is None:
        scaled = np.asarray(data, dtype=np.float64) / (2.0 * eb_abs)
    else:
        # dtype= forces the float64 loop even for float32 inputs; without it
        # the division runs in float32 and half-point values round wrong
        scaled = np.divide(data, 2.0 * eb_abs, out=scratch, dtype=np.float64)
    if scaled.size and float(np.abs(scaled).max()) >= 2**62:
        raise CodecError("error bound too tight: quantization index overflows int64")
    np.rint(scaled, out=scaled)
    if out is None:
        return scaled.astype(np.int64)
    out[...] = scaled
    return out


def dequantize(codes: np.ndarray, eb_abs: float, dtype: np.dtype, *,
               out: np.ndarray | None = None) -> np.ndarray:
    """Inverse of :func:`prequantize` (up to the quantisation error).

    With ``out`` (an array of the target ``dtype``) the scale-back is
    computed straight into it, skipping the full-size ``float64``
    intermediate the allocating path pays.
    """
    if SANITIZER.enabled:
        SANITIZER.check_live("dequantize", codes, out)
        SANITIZER.check_no_alias("dequantize", out, codes=codes)
    if out is None:
        return (np.asarray(codes, dtype=np.float64) * (2.0 * eb_abs)).astype(dtype)
    np.multiply(codes, 2.0 * eb_abs, out=out, casting="unsafe")
    return out


@dataclass(frozen=True)
class OutlierSet:
    """Sparse side channel for unpredictable values.

    Attributes
    ----------
    indices:
        flat positions (``int64``) into the C-order flattened code array.
    values:
        the true (signed) integer deltas at those positions.
    """

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.indices.shape != self.values.shape:
            raise CodecError("outlier indices/values shape mismatch")

    @property
    def count(self) -> int:
        return int(self.indices.size)

    def nbytes(self) -> int:
        """Serialised footprint (used by ratio accounting)."""
        return int(self.indices.nbytes + self.values.nbytes)


def split_outliers(deltas: np.ndarray, radius: int = DEFAULT_RADIUS, *,
                   in_place: bool = False) -> tuple[np.ndarray, OutlierSet]:
    """Separate predictable codes from outliers.

    Parameters
    ----------
    deltas:
        signed integer prediction residuals (any shape).
    radius:
        codes with ``-radius <= delta < radius`` are *predictable* and are
        rebased to the unsigned alphabet ``[0, 2*radius)`` (zero residual
        maps to ``radius``, as in cuSZ).  Everything else is emitted as an
        outlier and its slot in the dense array is set to the sentinel
        ``radius`` (i.e. zero residual) so the dense stream stays maximally
        compressible.
    in_place:
        rebase inside ``deltas`` itself instead of a fresh temporary
        (clobbers the input; used by callers whose residual buffer is
        pooled scratch).  The returned ``codes`` array is fresh either way.

    Returns
    -------
    (codes, outliers):
        ``codes`` is ``uint16`` when ``2*radius <= 65536`` else ``uint32``,
        same shape as ``deltas``.
    """
    if radius < 1 or radius > 2**30:
        raise CodecError(f"radius out of range: {radius}")
    deltas = np.asarray(deltas)
    flat = deltas.reshape(-1)
    mask = (flat >= radius) | (flat < -radius)
    idx = np.flatnonzero(mask).astype(np.int64)
    out = OutlierSet(indices=idx, values=flat[idx].astype(np.int64))
    if in_place and flat.dtype == np.int64:
        rebased = flat
        np.add(rebased, radius, out=rebased)
        rebased[idx] = radius
    else:
        rebased = flat + radius
        rebased = np.where(mask, radius, rebased)
    dtype = np.uint16 if 2 * radius <= 65536 else np.uint32
    return rebased.astype(dtype).reshape(deltas.shape), out


def merge_outliers(codes: np.ndarray, outliers: OutlierSet,
                   radius: int = DEFAULT_RADIUS, *,
                   out: np.ndarray | None = None) -> np.ndarray:
    """Inverse of :func:`split_outliers`: recover signed residuals.

    ``out`` (``int64``, at least ``codes.size`` elements) receives the
    residuals, making the call allocation-free for pooled callers.
    """
    if SANITIZER.enabled:
        SANITIZER.check_live("merge_outliers", codes, out,
                             outliers.indices, outliers.values)
        SANITIZER.check_no_alias("merge_outliers", out, codes=codes,
                                 outlier_values=outliers.values,
                                 allow_identical=False)
    if out is None:
        flat = codes.reshape(-1).astype(np.int64)
    else:
        flat = out.reshape(-1)[:codes.size]
        flat[...] = codes.reshape(-1)
    np.subtract(flat, radius, out=flat)
    if outliers.count:
        if int(outliers.indices.max()) >= flat.size:
            raise CodecError("outlier index out of bounds")
        flat[outliers.indices] = outliers.values
    return flat.reshape(codes.shape)


def pack_outliers(out: OutlierSet) -> tuple[bytes, bytes, int]:
    """Compactly serialise an outlier set.

    Indices are strictly increasing, so they are delta-coded (minus one) and
    fixed-length block-packed; values are zigzag-mapped and packed the same
    way.  Dense outlier regimes (hard-to-quantise data at tight bounds) then
    cost ~2-3 bytes per outlier instead of 16, which is what keeps the
    HACC-at-1e-6 compression ratios near the paper's ~2x instead of
    expanding the data.

    Returns ``(idx_payload, val_payload, count)``.
    """
    from . import bitshuffle as _bs
    from . import fixedlen as _fl
    if out.count == 0:
        return b"", b"", 0
    deltas = np.empty(out.count, dtype=np.int64)
    deltas[0] = out.indices[0]
    np.subtract(out.indices[1:], out.indices[:-1] + 1, out=deltas[1:])
    if int(deltas.min()) < 0:
        raise CodecError("outlier indices must be strictly increasing")
    if int(deltas.max()) >= 2**32:
        raise CodecError("outlier index gap too wide for packed serialisation")
    import struct as _struct

    def _fl_blob(e: _fl.FixedLenEncoded) -> bytes:
        return _struct.pack("<QI", e.count, len(e.widths)) + e.widths + e.payload

    idx_enc = _fl.encode(deltas.astype(np.uint32))
    zz = _bs.zigzag(out.values)
    # values normally fit 32 bits; astronomically tight bounds need the
    # 64-bit path (low and high halves packed separately, marked by a flag)
    if int(zz.max()) < 2**32:
        val_blob = b"\x00" + _fl_blob(_fl.encode(zz.astype(np.uint32)))
    else:
        lo = (zz & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        hi = (zz >> np.uint64(32)).astype(np.uint32)
        val_blob = (b"\x01" + _fl_blob(_fl.encode(lo))
                    + _fl_blob(_fl.encode(hi)))
    return _fl_blob(idx_enc), val_blob, out.count


def unpack_outliers(idx_payload: bytes, val_payload: bytes, count: int
                    ) -> OutlierSet:
    """Inverse of :func:`pack_outliers`."""
    from . import bitshuffle as _bs
    from . import fixedlen as _fl
    import struct as _struct
    if count == 0:
        return OutlierSet(indices=np.zeros(0, dtype=np.int64),
                          values=np.zeros(0, dtype=np.int64))

    def _fl_parse(blob: bytes, offset: int = 0
                  ) -> tuple[_fl.FixedLenEncoded, int]:
        n, wlen = _struct.unpack_from("<QI", blob, offset)
        off = offset + _struct.calcsize("<QI")
        widths = blob[off:off + wlen]
        block = _fl.BLOCK_VALUES
        padded = n + ((-n) % block)
        bytes_per = (np.frombuffer(widths, dtype=np.uint8).astype(np.int64)
                     * block + 7) // 8
        plen = int(bytes_per.sum())
        payload = blob[off + wlen:off + wlen + plen]
        return (_fl.FixedLenEncoded(widths=widths, payload=payload, count=n),
                off + wlen + plen)

    enc_idx, _ = _fl_parse(idx_payload)
    deltas = _fl.decode(enc_idx).astype(np.int64)
    if deltas.size != count:
        raise CodecError("outlier index count mismatch")
    indices = np.cumsum(deltas + 1) - 1

    if not val_payload:
        raise CodecError("missing outlier value payload")
    flag, rest = val_payload[0], val_payload[1:]
    if flag == 0:
        enc_lo, _ = _fl_parse(rest)
        zz = _fl.decode(enc_lo).astype(np.uint64)
    elif flag == 1:
        enc_lo, end = _fl_parse(rest)
        enc_hi, _ = _fl_parse(rest, end)
        lo = _fl.decode(enc_lo).astype(np.uint64)
        hi = _fl.decode(enc_hi).astype(np.uint64)
        zz = lo | (hi << np.uint64(32))
    else:
        raise CodecError(f"unknown outlier value packing flag {flag}")
    values = _bs.unzigzag(zz)
    if values.size != count:
        raise CodecError("outlier value count mismatch")
    return OutlierSet(indices=indices, values=values)


def scatter_outliers_into(recon_flat: np.ndarray, outliers: OutlierSet,
                          radius: int = DEFAULT_RADIUS) -> None:
    """In-place outlier scatter used by the STF decompression demo.

    Adds the *difference* between the true residual and the sentinel (zero)
    residual onto an already-reconstructed integer field; this is the task
    that runs concurrently with Huffman decode in §3.3.1.
    """
    if outliers.count:
        recon_flat[outliers.indices] += outliers.values
