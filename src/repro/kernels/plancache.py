"""Content-addressed plan cache for expensive derived objects.

Fused GPU compressors (cuSZ, FZ-GPU) amortise their setup work — Huffman
codebook construction, decode-table expansion, scratch allocation — across
a stream of fields; a naive modular pipeline redoes it on every call.  The
:class:`PlanCache` closes that gap: derived objects ("plans") are keyed by
a digest of the *content* they were derived from, so any call anywhere in
the process that needs the same plan gets the cached instance back.

Plans cached today
------------------
* canonical Huffman codebooks, keyed by ``(histogram digest, max_len)``
  (:func:`repro.kernels.huffman.build_codebook`), shared between the
  modular pipelines and the SZ3 baseline;
* warmed decode books — a :class:`~repro.kernels.huffman.Codebook` with
  its canonical codes *and* its ``2**max_len``-entry wavefront decode
  tables materialised — keyed by ``(lengths digest, max_len)``
  (:func:`repro.kernels.huffman.decode`);
* encoded streams — the packed :class:`~repro.kernels.huffman.HuffmanEncoded`
  for a symbol array, keyed by the digests of the symbols and the
  codebook: re-compressing content already seen (repeated snapshots, the
  warm half of an A/B run) skips the bit-packing pass entirely;
* decoded streams — the symbol array recovered from a payload, keyed by
  the digests of the payload, codebook and chunk tables: re-reading a hot
  container skips the wavefront decode.  Cached arrays are read-only;
* resolved module tables for header-driven decompression, keyed by the
  registry generation and the header's stage->name map
  (:func:`repro.core.pipeline.decompress`);
* compiled execution plans — the fused, specialised executors
  :func:`repro.compile.compile_plan` emits for a pipeline, keyed by the
  plan's content digest (spec + module fingerprints), so every engine in
  the process traces a given pipeline once.

Caches are process-wide, thread-safe, LRU-bounded by entry count and by
an approximate byte budget, and fully observable: per-cache hit / miss /
eviction counters live in the process-wide
:data:`~repro.obs.metrics.GLOBAL_METRICS` registry (``plancache.hits``
etc., labelled ``cache=<name>``), from which
:func:`repro.core.inspect.hotpath_stats`, the Prometheus exporter and
``BENCH_pipeline.json`` all read.  Occupancy (entries/bytes) is published
as gauges by a registry collector on scrape.

Set ``FZMOD_PLAN_CACHE=0`` to disable every cache (each lookup then calls
its builder directly but still counts misses), or call
:func:`clear_all_caches` to drop cached plans between measurements.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from ..obs.metrics import GLOBAL_METRICS

#: default per-cache entry bound
DEFAULT_MAX_ENTRIES = 64

#: default per-cache (approximate) byte budget
DEFAULT_MAX_BYTES = 64 << 20


def caching_enabled() -> bool:
    """Global kill switch (``FZMOD_PLAN_CACHE=0`` disables all caches)."""
    return os.environ.get("FZMOD_PLAN_CACHE", "1") != "0"


def digest(*parts: bytes | bytearray | memoryview | np.ndarray | int | str
           ) -> str:
    """Stable content digest over heterogeneous key parts.

    Arrays are hashed over their raw bytes together with dtype and shape,
    so two arrays with equal bytes but different views cannot collide.

    sha256 (truncated to 128 bits) rather than blake2b: the hot caches
    digest multi-megabyte code/payload arrays on every warm hit, and
    SHA-NI hardware makes sha256 ~2x faster per byte here.
    """
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            h.update(str(arr.dtype.str).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.view(np.uint8).reshape(-1).data)
        elif isinstance(part, (bytes, bytearray, memoryview)):
            h.update(b"b")
            h.update(part)
        else:
            h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()[:32]


class PlanCache:
    """A size-bounded, thread-safe LRU cache of derived objects.

    Parameters
    ----------
    name:
        stable identifier used in stats reports.
    max_entries / max_bytes:
        eviction bounds.  ``max_bytes`` is enforced against the byte
        estimate the caller supplies with each insert (0 = untracked).
    """

    def __init__(self, name: str, *, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.name = name
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, tuple[Any, int, str | None]] = \
            OrderedDict()
        self._bytes = 0
        # counters live in the global metrics registry (labelled by cache
        # name); a new cache taking over a name starts its counts fresh
        self._hits = GLOBAL_METRICS.counter("plancache.hits", cache=name)
        self._misses = GLOBAL_METRICS.counter("plancache.misses", cache=name)
        self._evictions = GLOBAL_METRICS.counter("plancache.evictions",
                                                 cache=name)
        # optional per-group counter triples, created on first use by
        # callers that tag inserts (the compiled-plan cache labels
        # compress vs decode plans this way)
        self._groups: dict[str, tuple] = {}
        self.reset_stats()
        # fzlint: disable-next-line=FZL001 -- deliberate process-wide
        # registration: caches self-enrol so stats/clear can reach them
        _CACHES[name] = self

    def _group_counters(self, group: str) -> tuple:
        """(hits, misses, evictions) counters for one insert group."""
        triple = self._groups.get(group)
        if triple is None:
            triple = (GLOBAL_METRICS.counter("plancache.hits",
                                             cache=self.name, group=group),
                      GLOBAL_METRICS.counter("plancache.misses",
                                             cache=self.name, group=group),
                      GLOBAL_METRICS.counter("plancache.evictions",
                                             cache=self.name, group=group))
            self._groups[group] = triple
        return triple

    def get_or_build(self, key: Any, builder: Callable[[], Any],
                     nbytes: Callable[[Any], int] | int = 0,
                     group: str | None = None) -> Any:
        """Return the cached plan for ``key``, building it on a miss.

        ``nbytes`` sizes the built value for the byte budget — either a
        constant or a callable applied to the freshly built value.  The
        builder runs outside the lock, so concurrent misses on the same
        key may build twice; last write wins (plans are value-objects, so
        duplicated work is safe, just wasted).

        ``group`` optionally tags the lookup for per-group breakdown
        counters on top of the cache-wide totals (the compiled-plan
        cache labels compress vs decode plans this way); evictions are
        attributed to the evicted entry's group.
        """
        gstats = self._group_counters(group) if group is not None else None
        if not caching_enabled():
            self._misses.inc()
            if gstats is not None:
                gstats[1].inc()
            return builder()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits.inc()
                if gstats is not None:
                    gstats[0].inc()
                return entry[0]
            self._misses.inc()
            if gstats is not None:
                gstats[1].inc()
        value = builder()
        size = nbytes(value) if callable(nbytes) else int(nbytes)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size, group)
            self._bytes += size
            while (len(self._entries) > self.max_entries
                   or (self.max_bytes and self._bytes > self.max_bytes)):
                if len(self._entries) <= 1:
                    break
                _, (_, dropped, dropped_group) = \
                    self._entries.popitem(last=False)
                self._bytes -= dropped
                self._evictions.inc()
                if dropped_group is not None:
                    self._group_counters(dropped_group)[2].inc()
        return value

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (group counters too)."""
        self._hits.reset()
        self._misses.reset()
        self._evictions.reset()
        for triple in self._groups.values():
            for counter in triple:
                counter.reset()

    def __len__(self) -> int:
        return len(self._entries)

    # counters are registry-backed; these views keep the historical API
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters + occupancy, as stable scalars.

        Caches whose callers tag lookups with ``group`` additionally
        report a ``by_group`` breakdown (hits/misses/evictions/entries
        per group) — this is how ``fzmod stats`` separates compress from
        decode plans in the compiled-plan cache.
        """
        with self._lock:
            out = {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }
            if self._groups:
                occupancy: dict[str, int] = {}
                for _, _, grp in self._entries.values():
                    if grp is not None:
                        occupancy[grp] = occupancy.get(grp, 0) + 1
                out["by_group"] = {
                    grp: {
                        "entries": occupancy.get(grp, 0),
                        "hits": triple[0].value,
                        "misses": triple[1].value,
                        "evictions": triple[2].value,
                    }
                    for grp, triple in sorted(self._groups.items())
                }
            return out


#: every PlanCache ever constructed, by name (module-level caches register
#: themselves at import time; ad-hoc caches join as they are created)
_CACHES: dict[str, PlanCache] = {}

#: Huffman codebooks built from histograms (encode-side plans)
CODEBOOK_CACHE = PlanCache("huffman.codebook")

#: decode books: Codebook + canonical codes + dense wavefront tables
#: (a 2**16-entry table pair is ~325 KiB, so ~48 warm books fit the budget)
DECODE_TABLE_CACHE = PlanCache("huffman.decode_tables", max_entries=48,
                               max_bytes=32 << 20)

#: packed HuffmanEncoded streams, keyed by (symbols, codebook) digests
ENCODE_STREAM_CACHE = PlanCache("huffman.encode_streams", max_entries=64,
                                max_bytes=96 << 20)

#: decoded symbol arrays, keyed by (payload, codebook, chunk-table) digests
DECODE_STREAM_CACHE = PlanCache("huffman.decode_streams", max_entries=64,
                                max_bytes=96 << 20)

#: resolved (stage -> module instance) tables for container decompression
MODULE_TABLE_CACHE = PlanCache("pipeline.modules", max_entries=128,
                               max_bytes=0)

#: compiled execution plans (:mod:`repro.compile`) for both directions —
#: compress plans and decode plans — keyed by the plan's content digest
#: (distinct digest tags keep the directions from colliding; lookups are
#: tagged ``group="compress"``/``group="decode"`` so stats break out per
#: direction).  Plans are flat closure lists over module references — a
#: few hundred bytes each — so only the entry bound matters.
COMPILED_PLAN_CACHE = PlanCache("compile.plans", max_entries=128,
                                max_bytes=0)


def all_caches() -> dict[str, PlanCache]:
    """Name -> cache for every live cache."""
    return dict(_CACHES)


def cache_stats() -> dict[str, dict]:
    """Stats for every live cache, keyed by cache name."""
    return {name: cache.stats() for name, cache in sorted(_CACHES.items())}


def clear_all_caches(reset_stats: bool = False) -> None:
    """Drop every cached plan in the process (optionally zero counters)."""
    for cache in _CACHES.values():
        cache.clear()
        if reset_stats:
            cache.reset_stats()


def _collect_cache_gauges(registry) -> None:
    """Publish per-cache occupancy as gauges on registry scrape."""
    for name, cache in sorted(_CACHES.items()):
        with cache._lock:
            entries, nbytes = len(cache._entries), cache._bytes
        registry.gauge("plancache.entries", cache=name).set(entries)
        registry.gauge("plancache.bytes", cache=name).set(nbytes)


GLOBAL_METRICS.add_collector(_collect_cache_gauges)
