"""Canonical Huffman codec with chunked, wavefront-parallel decoding.

This models cuSZ's Huffman stage faithfully in structure:

* **Length-limited optimal codebook** via the package-merge algorithm
  (max code length 16 by default), built from a histogram supplied by one
  of the :mod:`repro.kernels.histogram` modules.
* **Canonical code assignment** so the codebook serialises as one byte of
  code length per symbol.
* **Coarse-grained chunking**: symbols are encoded in independent,
  byte-aligned chunks (as cuSZ does for its GPU codec) so chunks can be
  decoded concurrently and memory stays bounded.
* **Wavefront-doubling decoder**: within a chunk, a decode table indexed by
  the ``max_len``-bit window at *every* bit offset yields ``(symbol,
  length)`` for all offsets at once; the symbol boundary chain starting at
  offset 0 is then extracted with pointer doubling — ``ceil(log2(n))``
  vectorised gathers instead of a per-symbol loop.  This is the NumPy
  analogue of parallel-prefix Huffman decoding on GPUs.

Encoding and decoding are exact inverses for arbitrary symbol streams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..errors import CodecError
from ..obs.spans import span
from ..runtime.threads import active_threads, run_slabs
from .bitio import pack_varlen, unpack_windows
from .plancache import (CODEBOOK_CACHE, DECODE_STREAM_CACHE,
                        DECODE_TABLE_CACHE, ENCODE_STREAM_CACHE, digest)

#: Default maximum code length; keeps the decode table at 2**16 entries.
DEFAULT_MAX_LEN = 16

#: Default symbols per chunk (cuSZ-style coarse grains).
DEFAULT_CHUNK = 1 << 20


def _huffman_lengths_unbounded(counts: np.ndarray) -> np.ndarray:
    """Classic heap-built Huffman code lengths (no length limit).

    Used only to decide whether package-merge is needed and in tests as a
    reference; zero-count symbols get length 0.
    """
    sym = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.int64)
    if sym.size == 0:
        raise CodecError("cannot build a codebook from an empty histogram")
    if sym.size == 1:
        lengths[sym[0]] = 1
        return lengths
    heap: list[tuple[int, int, list[int]]] = [
        (int(counts[s]), int(s), [int(s)]) for s in sym]
    heapq.heapify(heap)
    tie = counts.size
    while len(heap) > 1:
        w1, _, s1 = heapq.heappop(heap)
        w2, _, s2 = heapq.heappop(heap)
        lengths[s1] += 1
        lengths[s2] += 1
        heapq.heappush(heap, (w1 + w2, tie, s1 + s2))
        tie += 1
    return lengths


def package_merge_lengths(counts: np.ndarray, max_len: int) -> np.ndarray:
    """Optimal length-limited code lengths (package-merge).

    Returns an array of code lengths (0 for zero-count symbols) satisfying
    the Kraft inequality with ``max(lengths) <= max_len``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    sym = np.flatnonzero(counts)
    n = sym.size
    if n == 0:
        raise CodecError("cannot build a codebook from an empty histogram")
    lengths = np.zeros(counts.size, dtype=np.int64)
    if n == 1:
        lengths[sym[0]] = 1
        return lengths
    if n > (1 << max_len):
        raise CodecError(f"{n} symbols cannot be coded with max length {max_len}")

    # Each item is (weight, frozenset-of-leaf-ids represented as a counter).
    # We track per-leaf multiplicity with integer arrays for speed.
    order = sym[np.argsort(counts[sym], kind="stable")]
    base_w = counts[order].astype(np.int64)

    # items at each level: list of (weight, leaf_multiplicity_vector_index)
    # To stay O(n * max_len) in memory we represent each package as an index
    # tree: (weight, left_child, right_child, leaf_id) with leaf_id >= 0 for
    # leaves.  Lengths = number of solution items containing each leaf.
    weights = list(base_w)
    lefts = [-1] * n
    rights = [-1] * n
    leaf_of = list(range(n))

    def make_package(a: int, b: int) -> int:
        weights.append(weights[a] + weights[b])
        lefts.append(a)
        rights.append(b)
        leaf_of.append(-1)
        return len(weights) - 1

    prev_level: list[int] = list(range(n))  # node ids, sorted by weight
    for _ in range(max_len - 1):
        packages = [make_package(prev_level[i], prev_level[i + 1])
                    for i in range(0, len(prev_level) - 1, 2)]
        merged = sorted(list(range(n)) + packages, key=lambda i: weights[i])
        prev_level = merged

    take = 2 * n - 2
    counts_per_leaf = np.zeros(n, dtype=np.int64)
    stack = list(prev_level[:take])
    while stack:
        node = stack.pop()
        lid = leaf_of[node]
        if lid >= 0:
            counts_per_leaf[lid] += 1
        else:
            stack.append(lefts[node])
            stack.append(rights[node])
    lengths[order] = counts_per_leaf
    if int(lengths.max()) > max_len:  # pragma: no cover - algorithmic guard
        raise CodecError("package-merge produced an over-long code")
    return lengths


@dataclass
class Codebook:
    """Canonical Huffman codebook.

    ``lengths[s] == 0`` marks symbols absent from the stream.  Codes are
    assigned canonically (sorted by ``(length, symbol)``), so the whole book
    serialises as the lengths array alone.
    """

    lengths: np.ndarray
    max_len: int = DEFAULT_MAX_LEN
    _codes: np.ndarray | None = field(default=None, repr=False)
    _table_sym: np.ndarray | None = field(default=None, repr=False)
    _table_len: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.lengths = np.asarray(self.lengths, dtype=np.uint8)
        if self.lengths.ndim != 1:
            raise CodecError("codebook lengths must be 1-D")
        if self.lengths.size and int(self.lengths.max()) > self.max_len:
            raise CodecError("codebook length exceeds max_len")
        # Kraft inequality check for any non-trivial book.
        nz = self.lengths[self.lengths > 0].astype(np.int64)
        if nz.size:
            kraft = float((2.0 ** (-nz.astype(np.float64))).sum())
            if kraft > 1.0 + 1e-9:
                raise CodecError(f"codebook violates Kraft inequality ({kraft})")

    @property
    def num_bins(self) -> int:
        return int(self.lengths.size)

    @property
    def codes(self) -> np.ndarray:
        """Canonical code value per symbol (``uint32``, right-aligned)."""
        if self._codes is None:
            lengths = self.lengths.astype(np.int64)
            codes = np.zeros(lengths.size, dtype=np.uint32)
            order = np.lexsort((np.arange(lengths.size), lengths))
            order = order[lengths[order] > 0]
            code = 0
            prev_len = 0
            for s in order:
                ln = int(lengths[s])
                code <<= (ln - prev_len)
                codes[s] = code
                code += 1
                prev_len = ln
            self._codes = codes
        return self._codes

    def decode_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense decode tables indexed by a ``max_len``-bit window.

        ``table_sym[w]`` is the symbol whose code prefixes window ``w``;
        ``table_len[w]`` its code length (0 for windows reachable only past
        the end of a stream).
        """
        if self._table_sym is None:
            L = self.max_len
            tsym = np.zeros(1 << L, dtype=np.uint32)
            tlen = np.zeros(1 << L, dtype=np.uint8)
            lengths = self.lengths.astype(np.int64)
            codes = self.codes
            for s in np.flatnonzero(lengths):
                ln = int(lengths[s])
                lo = int(codes[s]) << (L - ln)
                hi = lo + (1 << (L - ln))
                tsym[lo:hi] = s
                tlen[lo:hi] = ln
            self._table_sym, self._table_len = tsym, tlen
        return self._table_sym, self._table_len


def _build_codebook_uncached(counts: np.ndarray, max_len: int) -> Codebook:
    unbounded = _huffman_lengths_unbounded(counts)
    if int(unbounded.max()) <= max_len:
        lengths = unbounded
    else:
        lengths = package_merge_lengths(counts, max_len)
    return Codebook(lengths=lengths, max_len=max_len)


def build_codebook(counts: np.ndarray, max_len: int = DEFAULT_MAX_LEN, *,
                   cache: bool = True) -> Codebook:
    """Build an optimal length-limited canonical codebook from a histogram.

    Codebooks are value-objects derived purely from the histogram, so they
    are served from a content-addressed plan cache keyed by the histogram
    digest: repeated compression of fields with identical code statistics
    (the warm serving path, and every shard of a repeated sharded run)
    skips the package-merge entirely.  Pass ``cache=False`` to force a
    fresh build (the cold-path baseline the perf harness measures).
    """
    counts = np.asarray(counts, dtype=np.int64)
    with span("kernel.huffman.build_codebook", bins=int(counts.size),
              bytes_in=int(counts.nbytes)) as sp:
        if not cache:
            book = _build_codebook_uncached(counts, max_len)
        else:
            key = (digest(counts), int(max_len))
            book = CODEBOOK_CACHE.get_or_build(
                key, lambda: _build_codebook_uncached(counts, max_len),
                nbytes=lambda book: int(book.lengths.nbytes) + 64)
        sp.set(bytes_out=int(book.lengths.nbytes))
        return book


def warm_decode_book(lengths: np.ndarray, max_len: int, *,
                     cache: bool = True) -> Codebook:
    """A :class:`Codebook` with canonical codes and dense decode tables
    already materialised, served from the plan cache.

    The ``2**max_len``-entry wavefront tables are the dominant per-call
    setup cost of :func:`decode`; keying them by the digest of the
    serialised lengths array means every container written with the same
    codebook (all shards of a shared-codebook run, every re-read of the
    same blob) shares one table pair.
    """
    def build() -> Codebook:
        # copy so a cached book never pins a caller's blob-backed view
        book = Codebook(lengths=np.array(lengths, dtype=np.uint8),
                        max_len=max_len)
        book.codes  # noqa: B018 - materialise the canonical codes
        book.decode_tables()
        return book

    if not cache:
        return build()
    key = (digest(np.ascontiguousarray(lengths)), int(max_len))
    return DECODE_TABLE_CACHE.get_or_build(
        key, build,
        nbytes=lambda book: int(book._table_sym.nbytes
                                + book._table_len.nbytes
                                + book.codes.nbytes + book.lengths.nbytes))


@dataclass(frozen=True)
class HuffmanEncoded:
    """A Huffman-encoded symbol stream.

    Attributes
    ----------
    payload:
        concatenation of byte-aligned chunk payloads.
    chunk_symbols / chunk_bits:
        per-chunk symbol counts and meaningful bit counts (chunks start at
        byte boundaries: chunk ``i`` begins at byte
        ``sum(ceil(chunk_bits[:i] / 8))``).
    count:
        total number of symbols.
    lengths:
        codebook serialisation (code length per symbol).
    max_len:
        codebook length limit.
    """

    payload: bytes
    chunk_symbols: np.ndarray
    chunk_bits: np.ndarray
    count: int
    lengths: np.ndarray
    max_len: int

    def nbytes(self) -> int:
        """Serialised footprint (payload + tables + codebook)."""
        return (len(self.payload) + self.chunk_symbols.nbytes
                + self.chunk_bits.nbytes + self.lengths.nbytes)


def encode_empty(num_bins: int, max_len: int = DEFAULT_MAX_LEN
                 ) -> HuffmanEncoded:
    """The canonical encoding of an empty symbol stream (no codebook).

    Predictors can legitimately emit zero codes (e.g. a one-element field
    where the single value is an interpolation anchor); encoders must
    round-trip that case.
    """
    return HuffmanEncoded(payload=b"",
                          chunk_symbols=np.zeros(0, dtype=np.int64),
                          chunk_bits=np.zeros(0, dtype=np.int64),
                          count=0,
                          lengths=np.zeros(num_bins, dtype=np.uint8),
                          max_len=max_len)


def encode(symbols: np.ndarray, book: Codebook,
           chunk: int = DEFAULT_CHUNK, *, cache: bool = True
           ) -> HuffmanEncoded:
    """Encode a symbol array with a canonical codebook, in chunks.

    Encoded streams are value-objects derived purely from ``(symbols,
    lengths, chunk)``, so they are served from a content-addressed plan
    cache: re-compressing content the process has already packed (repeated
    snapshots of the same field, the warm half of a cold/warm A/B run)
    costs one digest instead of a full bit-packing pass.  Cached streams
    have read-only table arrays; ``cache=False`` forces a fresh pack.
    """
    symbols = np.ascontiguousarray(np.asarray(symbols).reshape(-1))
    with span("kernel.huffman.encode", symbols=int(symbols.size),
              bytes_in=int(symbols.nbytes)) as sp:
        if not cache:
            enc = _encode_uncached(symbols, book, chunk)
        else:
            key = (digest(symbols), digest(book.lengths), int(chunk),
                   int(book.max_len))

            def build() -> HuffmanEncoded:
                fresh = _encode_uncached(symbols, book, chunk)
                fresh.chunk_symbols.setflags(write=False)
                fresh.chunk_bits.setflags(write=False)
                fresh.lengths.setflags(write=False)
                return fresh

            enc = ENCODE_STREAM_CACHE.get_or_build(
                key, build, nbytes=lambda enc: enc.nbytes() + 64)
        sp.set(bytes_out=len(enc.payload))
        return enc


def _encode_uncached(symbols: np.ndarray, book: Codebook,
                     chunk: int) -> HuffmanEncoded:
    if symbols.size and int(symbols.max()) >= book.num_bins:
        raise CodecError("symbol out of codebook range")
    lengths_lut = book.lengths.astype(np.int64)
    if symbols.size and bool((lengths_lut[symbols] == 0).any()):
        raise CodecError("stream contains a symbol absent from the histogram")
    codes_lut = book.codes
    parts: list[bytes] = []
    csyms: list[int] = []
    cbits: list[int] = []
    starts = [s for s in range(0, max(symbols.size, 1), chunk)
              if symbols[s:s + chunk].size]
    budget = active_threads()
    if budget > 1 and len(starts) > 1:
        # chunks are independent by format (byte-aligned, own bit
        # counts): pack them concurrently on the slab pool and splice
        # in chunk order — byte-identical to the serial loop
        def pack_chunk(start: int) -> tuple[bytes, int, int]:
            part = symbols[start:start + chunk]
            payload, nbits = pack_varlen(codes_lut[part], lengths_lut[part])
            return payload, part.size, nbits

        for payload, nsyms, nbits in run_slabs(pack_chunk, starts,
                                               threads=budget):
            parts.append(payload)
            csyms.append(nsyms)
            cbits.append(nbits)
    else:
        for start in starts:
            part = symbols[start:start + chunk]
            payload, nbits = pack_varlen(codes_lut[part], lengths_lut[part])
            parts.append(payload)
            csyms.append(part.size)
            cbits.append(nbits)
    return HuffmanEncoded(payload=b"".join(parts),
                          chunk_symbols=np.asarray(csyms, dtype=np.int64),
                          chunk_bits=np.asarray(cbits, dtype=np.int64),
                          count=int(symbols.size),
                          lengths=book.lengths.copy(),
                          max_len=book.max_len)


def _decode_chunk(payload: bytes, nbits: int, nsyms: int,
                  tsym: np.ndarray, tlen: np.ndarray, max_len: int) -> np.ndarray:
    """Wavefront-doubling decode of one chunk."""
    if nsyms == 0:
        return np.zeros(0, dtype=np.uint32)
    if len(payload) < (nbits + 7) // 8:
        raise CodecError("Huffman chunk payload shorter than its bit length")
    windows = unpack_windows(payload, nbits, max_len)
    sym_at = tsym[windows]
    len_at = tlen[windows].astype(np.int64)
    if bool((len_at == 0).any()):
        raise CodecError("corrupt Huffman stream: unknown code window")
    # next[p] = bit offset of the following symbol; sentinel self-loop at end.
    jump = np.minimum(np.arange(nbits, dtype=np.int64) + len_at, nbits)
    jump = np.concatenate([jump, np.asarray([nbits], dtype=np.int64)])
    positions = np.empty(nsyms, dtype=np.int64)
    positions[0] = 0
    known = 1
    while known < nsyms:
        take = min(known, nsyms - known)
        positions[known:known + take] = jump[positions[:take]]
        known += take
        if known < nsyms:
            jump = jump[jump]  # next^(2k)
    if bool((positions >= nbits).any()):
        raise CodecError("Huffman stream too short for symbol count")
    out = sym_at[positions]
    end = positions[-1] + len_at[positions[-1]]
    if int(end) != nbits:
        raise CodecError("Huffman chunk bit-length mismatch")
    return out


def decode(enc: HuffmanEncoded, *, cache: bool = True) -> np.ndarray:
    """Decode a :class:`HuffmanEncoded` stream back to symbols (uint32).

    Decoded streams are memoised in a content-addressed plan cache keyed
    by (payload digest, lengths digest, max_len, count): re-reading a
    container the process has already decoded (the warm serving path)
    costs two digests instead of the wavefront-doubling pass.  The count
    is part of the key because degenerate single-symbol streams pad to
    identical payload bytes for different symbol counts; the chunk
    tables need no key of their own — they are derived from the same
    encode that produced the payload, and a corrupt mismatch still
    surfaces because the *first* decode of any payload runs in full.
    Cached arrays are returned read-only — every in-tree consumer
    copies via ``astype``/fancy indexing before mutating.
    ``cache=False`` forces a fresh decode.
    """
    with span("kernel.huffman.decode", symbols=int(enc.count),
              bytes_in=len(enc.payload)) as sp:
        if not cache:
            out = _decode_uncached(enc, cache=False)
        else:
            key = (digest(enc.payload),
                   digest(np.ascontiguousarray(enc.lengths)),
                   int(enc.max_len), int(enc.count))

            def build() -> np.ndarray:
                fresh = _decode_uncached(enc, cache=True)
                fresh.setflags(write=False)
                return fresh

            out = DECODE_STREAM_CACHE.get_or_build(
                key, build, nbytes=lambda arr: int(arr.nbytes) + 64)
            if out.size != enc.count:
                # the key ignores the chunk tables; a decode whose
                # size disagrees with the declared count means the
                # container metadata was tampered with
                raise CodecError("decoded symbol count mismatch")
        sp.set(bytes_out=int(out.nbytes))
        return out


def _decode_uncached(enc: HuffmanEncoded, *, cache: bool) -> np.ndarray:
    book = warm_decode_book(enc.lengths, enc.max_len, cache=cache)
    tsym, tlen = book.decode_tables()
    entries: list[tuple[int, int, int, int]] = []
    offset = 0
    for nsyms, nbits in zip(enc.chunk_symbols, enc.chunk_bits):
        nbytes = (int(nbits) + 7) // 8
        entries.append((offset, nbytes, int(nbits), int(nsyms)))
        offset += nbytes
    budget = active_threads()
    if budget > 1 and len(entries) > 1:
        # chunk boundaries are known up front (byte-aligned starts from
        # the bit-count table), so the wavefront decodes run
        # concurrently; concatenation in chunk order keeps the symbol
        # stream identical to the serial loop
        def decode_one(entry: tuple[int, int, int, int]) -> np.ndarray:
            off, nbytes, nbits, nsyms = entry
            return _decode_chunk(enc.payload[off:off + nbytes], nbits,
                                 nsyms, tsym, tlen, enc.max_len)

        out = run_slabs(decode_one, entries, threads=budget)
    else:
        out = [_decode_chunk(enc.payload[off:off + nbytes], nbits, nsyms,
                             tsym, tlen, enc.max_len)
               for off, nbytes, nbits, nsyms in entries]
    if not out:
        return np.zeros(0, dtype=np.uint32)
    result = np.concatenate(out)
    if result.size != enc.count:
        raise CodecError("decoded symbol count mismatch")
    return result


def decode_serial_reference(enc: HuffmanEncoded) -> np.ndarray:
    """Bit-by-bit reference decoder (tests cross-check the parallel path)."""
    book = Codebook(lengths=enc.lengths, max_len=enc.max_len)
    tsym, tlen = book.decode_tables()
    out = np.empty(enc.count, dtype=np.uint32)
    pos = 0
    offset = 0
    for nsyms, nbits in zip(enc.chunk_symbols, enc.chunk_bits):
        nbytes = (int(nbits) + 7) // 8
        windows = unpack_windows(enc.payload[offset:offset + nbytes],
                                 int(nbits), enc.max_len)
        offset += nbytes
        p = 0
        for _ in range(int(nsyms)):
            w = int(windows[p])
            out[pos] = tsym[w]
            p += int(tlen[w])
            pos += 1
    return out


def expected_bits(counts: np.ndarray, book: Codebook) -> int:
    """Exact encoded size in bits for a stream with histogram ``counts``."""
    return int((counts.astype(np.int64) * book.lengths.astype(np.int64)).sum())
