"""Quant-code histogram kernels (standard and top-k variants).

The Huffman encoder consumes a histogram of the quant codes.  The paper's
framework ships two GPU histogram modules producing identical results with
different cost profiles:

* **standard** — a dense shared-memory histogram (here ``np.bincount``);
* **top-k** — a sparsity-aware variant that wins when the code distribution
  is dominated by a few symbols (the typical outcome of a high-accuracy
  predictor, which concentrates residuals near zero).  The paper recommends
  it for the spline interpolator.

Both return the same counts; the top-k variant additionally reports the
concentration statistics the auto-tuner and the performance model use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError


@dataclass(frozen=True)
class HistogramResult:
    """Histogram of an unsigned code array.

    Attributes
    ----------
    counts:
        dense ``int64`` counts, length ``num_bins``.
    num_bins:
        alphabet size (``2 * radius`` for quant codes).
    topk_mass:
        fraction of all samples covered by the ``k`` most frequent symbols
        (1.0 when the distribution is fully concentrated).
    k:
        the ``k`` used for ``topk_mass`` (0 for the standard variant).
    """

    counts: np.ndarray
    num_bins: int
    topk_mass: float = 0.0
    k: int = 0

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def nonzero_symbols(self) -> int:
        return int(np.count_nonzero(self.counts))

    def entropy_bits(self) -> float:
        """Shannon entropy of the empirical distribution, in bits/symbol."""
        total = self.total
        if total == 0:
            return 0.0
        p = self.counts[self.counts > 0] / total
        return float(-(p * np.log2(p)).sum())


def histogram(codes: np.ndarray, num_bins: int) -> HistogramResult:
    """Dense histogram (the *standard* GPU module)."""
    codes = np.asarray(codes).reshape(-1)
    if num_bins < 1:
        raise CodecError("num_bins must be >= 1")
    if codes.size and int(codes.max()) >= num_bins:
        raise CodecError("code value exceeds histogram bins")
    counts = np.bincount(codes, minlength=num_bins).astype(np.int64)
    return HistogramResult(counts=counts, num_bins=num_bins)


def histogram_topk(codes: np.ndarray, num_bins: int, k: int = 16) -> HistogramResult:
    """Top-k histogram module.

    Produces the same dense counts as :func:`histogram` but models the
    sparsity-aware kernel: it also measures how much probability mass the
    ``k`` most frequent symbols carry, which the performance model uses to
    price this module (cheap when mass is concentrated, as after a
    high-quality predictor).
    """
    base = histogram(codes, num_bins)
    if k < 1:
        raise CodecError("k must be >= 1")
    k = min(k, num_bins)
    if base.total == 0:
        return HistogramResult(counts=base.counts, num_bins=num_bins,
                               topk_mass=1.0, k=k)
    top = np.partition(base.counts, num_bins - k)[num_bins - k:]
    mass = float(top.sum()) / float(base.total)
    return HistogramResult(counts=base.counts, num_bins=num_bins,
                           topk_mass=mass, k=k)
