"""Vectorised bit-stream packing/unpacking helpers.

Every codec in :mod:`repro.kernels` works on whole arrays at a time, never
value-by-value, following the data-parallel formulation of the GPU kernels
they model.  This module provides the shared primitives:

* :func:`pack_varlen` / :func:`unpack_windows` — pack per-symbol variable
  length codes into a byte stream (the core of the Huffman encoder) and read
  a fixed-width window at *every* bit offset of a stream (the core of the
  wavefront-parallel Huffman decoder).
* :func:`pack_fixed` / :func:`unpack_fixed` — pack ``n`` values of a uniform
  bit width (cuSZp2-style fixed-length blocks).

All functions operate on little-endian *bit order within a byte being MSB
first* (``np.packbits`` convention), which keeps round-trips exact.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError


def pack_varlen(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Concatenate variable-length codes into a packed byte string.

    Parameters
    ----------
    codes:
        ``uint32`` array; element ``i`` holds the code value for symbol ``i``
        right-aligned (only the low ``lengths[i]`` bits are meaningful).
    lengths:
        per-symbol bit lengths, ``1 <= lengths[i] <= 32``.

    Returns
    -------
    (payload, total_bits):
        the packed bytes (zero-padded to a byte boundary) and the exact
        number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint32)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape or codes.ndim != 1:
        raise CodecError("codes and lengths must be 1-D arrays of equal shape")
    if codes.size == 0:
        return b"", 0
    if lengths.min() < 1 or lengths.max() > 32:
        raise CodecError("code lengths must be in [1, 32]")

    total_bits = int(lengths.sum())
    # Bit index of the first bit of each symbol in the output stream.
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    # For every output bit: which symbol does it come from, and which bit of
    # that symbol's code is it (0 == most significant of the code)?
    sym_of_bit = np.repeat(np.arange(codes.size, dtype=np.int64), lengths)
    bit_in_sym = np.arange(total_bits, dtype=np.int64) - np.repeat(starts, lengths)
    shift = (lengths[sym_of_bit] - 1 - bit_in_sym).astype(np.uint32)
    bits = ((codes[sym_of_bit] >> shift) & np.uint32(1)).astype(np.uint8)
    return np.packbits(bits).tobytes(), total_bits


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 ``uint8`` bit array (MSB-first) into bytes."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def bytes_to_bits(payload: bytes, total_bits: int) -> np.ndarray:
    """Unpack bytes to a 0/1 ``uint8`` array of exactly ``total_bits``."""
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    if bits.size < total_bits:
        raise CodecError(f"payload holds {bits.size} bits, need {total_bits}")
    return bits[:total_bits]


def unpack_windows(payload: bytes, total_bits: int, width: int) -> np.ndarray:
    """Read a ``width``-bit big-endian window starting at *every* bit offset.

    Returns a ``uint32`` array ``w`` of length ``total_bits`` where ``w[p]``
    is the value of bits ``p .. p+width-1`` of the stream (bits past the end
    read as zero).  This is the enabling primitive for the wavefront-parallel
    canonical-Huffman decoder in :mod:`repro.kernels.huffman`: a decode table
    indexed by ``w[p]`` yields the symbol and code length at offset ``p``
    for all ``p`` simultaneously.
    """
    if width < 1 or width > 24:
        raise CodecError("window width must be in [1, 24]")
    if total_bits == 0:
        return np.zeros(0, dtype=np.uint32)
    raw = np.frombuffer(payload, dtype=np.uint8)
    # Pad so every window read of ceil((width+7)/8)+1 bytes is in bounds.
    need = (total_bits + 7) // 8 + 4
    if raw.size < need:
        raw = np.concatenate([raw, np.zeros(need - raw.size, dtype=np.uint8)])
    b = raw.astype(np.uint64)
    byte0 = np.arange(total_bits, dtype=np.int64) // 8
    bit0 = np.arange(total_bits, dtype=np.int64) % 8
    # Assemble a 32-bit big-endian word starting at byte0, then shift so the
    # requested window lands in the low `width` bits.
    word = (b[byte0] << np.uint64(24)) | (b[byte0 + 1] << np.uint64(16)) \
        | (b[byte0 + 2] << np.uint64(8)) | b[byte0 + 3]
    win = (word >> (np.uint64(32 - width) - bit0.astype(np.uint64))) \
        & np.uint64((1 << width) - 1)
    return win.astype(np.uint32)


def pack_fixed(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` (non-negative ints ``< 2**width``) at a fixed width.

    ``width`` may be 0, in which case the payload is empty (all values are
    implicitly zero) — this is the common case for cuSZp2's all-predictable
    blocks.
    """
    values = np.asarray(values)
    if width == 0:
        if values.size and int(values.max(initial=0)) != 0:
            raise CodecError("width 0 requires all-zero values")
        return b""
    if width < 0 or width > 32:
        raise CodecError("fixed width must be in [0, 32]")
    v = values.astype(np.uint32)
    if v.size and int(v.max()) >> width:
        raise CodecError(f"value does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint32)
    bits = ((v[:, None] >> shifts[None, :]) & np.uint32(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1)).tobytes()


def unpack_fixed(payload: bytes, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed`: read ``count`` ``width``-bit values."""
    if width == 0:
        return np.zeros(count, dtype=np.uint32)
    total_bits = count * width
    bits = bytes_to_bits(payload, total_bits).reshape(count, width).astype(np.uint32)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint32)
    return (bits << shifts[None, :]).sum(axis=1, dtype=np.uint32)


def required_width(values: np.ndarray) -> int:
    """Smallest bit width able to represent every value of ``values``."""
    values = np.asarray(values)
    if values.size == 0:
        return 0
    m = int(values.max(initial=0))
    if m < 0 or int(values.min(initial=0)) < 0:
        raise CodecError("required_width expects non-negative values")
    return int(m).bit_length()
