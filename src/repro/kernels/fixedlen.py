"""Per-block fixed-length encoding (cuSZp2 construction).

cuSZp2 encodes zigzagged residuals block-by-block: each block stores one
bit-width byte (the smallest width holding every value of the block) plus
its values packed at that width.  All-zero blocks cost exactly one byte.
The scheme sacrifices entropy-optimality for a branch-free fused kernel —
the throughput-vs-ratio trade at the heart of Figure 1 vs Table 3.

The NumPy formulation packs *all* blocks of equal width together, so the
pass count is independent of the block count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError

#: Values per block (cuSZp2 uses 32-thread warps over 32-value blocks).
BLOCK_VALUES = 32


@dataclass(frozen=True)
class FixedLenEncoded:
    """A fixed-length-encoded stream.

    ``widths[b]`` is the bit width of block ``b``; ``payload`` concatenates
    the packed blocks in order (each block byte-aligned).
    """

    widths: bytes
    payload: bytes
    count: int
    block: int = BLOCK_VALUES

    def nbytes(self) -> int:
        """Serialised footprint (width table + packed payload)."""
        return len(self.widths) + len(self.payload)


def encode(values: np.ndarray, block: int = BLOCK_VALUES) -> FixedLenEncoded:
    """Encode non-negative integers (< 2**32) with per-block widths."""
    v = np.asarray(values).reshape(-1)
    if v.size and (int(v.min(initial=0)) < 0):
        raise CodecError("fixed-length encoding expects non-negative values")
    count = v.size
    v = v.astype(np.uint32)
    pad = (-count) % block
    if pad:
        v = np.concatenate([v, np.zeros(pad, dtype=np.uint32)])
    blocks = v.reshape(-1, block)
    maxima = blocks.max(axis=1)
    # bit width per block, vectorised bit_length.
    widths = np.zeros(maxima.size, dtype=np.uint8)
    nz = maxima > 0
    widths[nz] = np.floor(np.log2(maxima[nz].astype(np.float64))).astype(np.uint8) + 1

    # Pack every block at its width, grouped by width so each group is one
    # vectorised shift/pack, then scatter groups into the payload at the
    # per-block byte offsets (vectorised fancy-index store per group).
    bytes_per = (widths.astype(np.int64) * block + 7) // 8
    offsets = np.concatenate(([0], np.cumsum(bytes_per)))
    payload = np.zeros(int(offsets[-1]), dtype=np.uint8)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == w)
        grp = blocks[sel]  # (g, block)
        shifts = np.arange(w - 1, -1, -1, dtype=np.uint32)
        bits = ((grp[:, :, None] >> shifts[None, None, :]) & np.uint32(1)).astype(np.uint8)
        packed = np.packbits(bits.reshape(grp.shape[0], -1), axis=-1)
        nb = packed.shape[1]
        idx = offsets[sel][:, None] + np.arange(nb)[None, :]
        payload[idx] = packed
    return FixedLenEncoded(widths=widths.tobytes(), payload=payload.tobytes(),
                           count=count, block=block)


def decode(enc: FixedLenEncoded) -> np.ndarray:
    """Inverse of :func:`encode`; returns ``uint32`` values."""
    block = enc.block
    widths = np.frombuffer(enc.widths, dtype=np.uint8)
    padded = enc.count + ((-enc.count) % block)
    if widths.size != padded // block:
        raise CodecError("width table length mismatch")
    bytes_per = (widths.astype(np.int64) * block + 7) // 8
    offsets = np.concatenate(([0], np.cumsum(bytes_per)))
    payload = np.frombuffer(enc.payload, dtype=np.uint8)
    if payload.size != int(offsets[-1]):
        raise CodecError("fixed-length payload size mismatch")
    out = np.zeros((widths.size, block), dtype=np.uint32)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == w)
        nb = int(bytes_per[sel[0]])
        # Gather the byte rows for all blocks of this width at once.
        idx = offsets[sel][:, None] + np.arange(nb)[None, :]
        rows = payload[idx]
        bits = np.unpackbits(rows, axis=-1)[:, :block * w]
        bits = bits.reshape(len(sel), block, w).astype(np.uint32)
        shifts = np.arange(w - 1, -1, -1, dtype=np.uint32)
        out[sel] = (bits << shifts[None, None, :]).sum(axis=2, dtype=np.uint32)
    return out.reshape(-1)[:enc.count]
