"""Zero-word dictionary / elimination coder (FZ-GPU & PFPL last stage).

After zigzag + bitshuffle the byte stream is dominated by zero *words*.
This stage removes them with a hierarchical bitmap:

* level 0: the stream is split into fixed-size words (default 32 bytes, the
  granularity of FZ-GPU's warp-level compaction); a bitmap marks non-zero
  words, and only those are stored;
* level 1: the level-0 bitmap itself is mostly zero on smooth data, so its
  zero *bytes* are removed by a second bitmap.

The hierarchy is what lets the PFPL-style pipelines reach three-digit
compression ratios on near-constant fields (Nyx at eb=1e-2 in Table 3):
CR is then bounded by the level-1 bitmap, ``8 * 8 * word`` input bytes per
output bit, rather than by the flat bitmap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError

#: Word granularity for zero elimination (bytes).
WORD_BYTES = 32


@dataclass(frozen=True)
class ZeroEliminated:
    """Container for a zero-eliminated stream."""

    bitmap2: bytes      # bitmap over level-1 bytes of bitmap1
    bitmap1: bytes      # non-zero bytes of the word bitmap, compacted
    words: bytes        # non-zero words, compacted
    orig_len: int       # original stream length in bytes
    word_bytes: int = WORD_BYTES

    def nbytes(self) -> int:
        """Serialised footprint of the compacted stream."""
        return len(self.bitmap2) + len(self.bitmap1) + len(self.words)


def eliminate(stream: bytes, word_bytes: int = WORD_BYTES,
              two_level: bool = True) -> ZeroEliminated:
    """Remove zero words from ``stream`` (lossless, see module docstring).

    ``two_level=False`` stores the word bitmap raw (``bitmap2 == b""``),
    matching the flat-bitmap design of the original FZ-GPU port used by the
    FZMod-Speed module — cheaper to produce, but it caps the achievable CR
    on near-constant data, which is why the paper's speed pipeline posts
    visibly lower ratios at loose bounds.
    """
    if word_bytes < 1:
        raise CodecError("word_bytes must be >= 1")
    data = np.frombuffer(stream, dtype=np.uint8)
    orig_len = data.size
    pad = (-data.size) % word_bytes
    if pad:
        data = np.concatenate([data, np.zeros(pad, dtype=np.uint8)])
    words = data.reshape(-1, word_bytes)
    nonzero = words.any(axis=1)
    bitmap1_full = np.packbits(nonzero)
    kept_words = words[nonzero].tobytes()

    if not two_level:
        return ZeroEliminated(bitmap2=b"", bitmap1=bitmap1_full.tobytes(),
                              words=kept_words, orig_len=orig_len,
                              word_bytes=word_bytes)
    nz_bytes = bitmap1_full != 0
    bitmap2 = np.packbits(nz_bytes).tobytes()
    bitmap1 = bitmap1_full[nz_bytes].tobytes()
    return ZeroEliminated(bitmap2=bitmap2, bitmap1=bitmap1, words=kept_words,
                          orig_len=orig_len, word_bytes=word_bytes)


def restore(z: ZeroEliminated) -> bytes:
    """Inverse of :func:`eliminate`."""
    word_bytes = z.word_bytes
    padded = z.orig_len + ((-z.orig_len) % word_bytes)
    nwords = padded // word_bytes
    bitmap1_len = (nwords + 7) // 8

    if not z.bitmap2:  # single-level container: bitmap1 stored raw
        bitmap1_full = np.frombuffer(z.bitmap1, dtype=np.uint8)
        if bitmap1_full.size != bitmap1_len:
            raise CodecError("flat bitmap length mismatch")
    else:
        nz_bytes = np.unpackbits(np.frombuffer(z.bitmap2, dtype=np.uint8))
        if nz_bytes.size < bitmap1_len:
            raise CodecError("level-2 bitmap too short")
        nz_bytes = nz_bytes[:bitmap1_len].astype(bool)
        bitmap1_full = np.zeros(bitmap1_len, dtype=np.uint8)
        kept = np.frombuffer(z.bitmap1, dtype=np.uint8)
        if kept.size != int(nz_bytes.sum()):
            raise CodecError("level-1 bitmap length mismatch")
        bitmap1_full[nz_bytes] = kept

    nonzero = np.unpackbits(bitmap1_full)[:nwords].astype(bool)
    words = np.zeros((nwords, word_bytes), dtype=np.uint8)
    payload = np.frombuffer(z.words, dtype=np.uint8)
    if payload.size != int(nonzero.sum()) * word_bytes:
        raise CodecError("compacted word payload length mismatch")
    words[nonzero] = payload.reshape(-1, word_bytes)
    return words.reshape(-1)[:z.orig_len].tobytes()
