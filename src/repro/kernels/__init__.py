"""High-performance data-reduction kernels.

Every kernel is formulated data-parallel (whole-array NumPy operations,
never per-element Python loops on hot paths), mirroring the CUDA kernels of
the systems being reproduced:

================  =====================================================
module            models
================  =====================================================
``bitio``         shared bit-packing primitives
``quantize``      cuSZ dual-quantization pre-quantiser + outlier channel
``lorenzo``       cuSZ multidimensional Lorenzo predictor (+ cuSZp2's
                  1-D offset predictor)
``interp``        cuSZ-i G-Interp multilevel spline interpolation
``histogram``     cuSZ GPU histogram modules (standard, top-k)
``huffman``       cuSZ chunked canonical Huffman (package-merge limited,
                  wavefront-parallel decode)
``bitshuffle``    FZ-GPU / PFPL bit-plane shuffle (+ zigzag mapping)
``dictionary``    FZ-GPU dictionary / PFPL hierarchical zero elimination
``delta``         PFPL delta coding
``fixedlen``      cuSZp2 per-block fixed-length encoding
``rle``           byte run-length coder (reference secondary module)
``lz``            zstd-role secondary codec (token dedup + Huffman)
================  =====================================================
"""

from . import (bitio, bitshuffle, delta, dictionary, fixedlen, histogram,
               huffman, interp, lorenzo, lz, lz77, quantize, rle)

__all__ = [
    "bitio", "bitshuffle", "delta", "dictionary", "fixedlen", "histogram",
    "huffman", "interp", "lorenzo", "lz", "lz77", "quantize", "rle",
]
