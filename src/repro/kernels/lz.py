"""Generic lossless backend (the zstd-role secondary codec).

The paper ships zstd as its supported secondary lossless module.  zstd is
unavailable offline, so this module implements a from-scratch codec with
the same structure — *dictionary de-duplication + entropy coding* — and the
same role: squeezing residual redundancy out of already-encoded pipeline
output.  See DESIGN.md §2 for the substitution record.

Three modes are tried and the smallest wins (one mode byte leads the
container):

``TOKEN``
    The stream is cut into aligned 8-byte tokens; ``np.unique`` builds the
    token dictionary and the token-index sequence is canonical-Huffman
    coded.  Extremely effective on pipeline output with repeated aligned
    patterns (zero words, sentinel codes).
``BYTE``
    Canonical Huffman over raw bytes — the safe general-purpose fallback.
``STORED``
    Raw pass-through, guaranteeing the codec never expands data by more
    than the fixed header.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from . import huffman

_MODE_STORED = 0
_MODE_BYTE = 1
_MODE_TOKEN = 2

_TOKEN_BYTES = 8
#: Token mode is only attempted below this dictionary size (Huffman decode
#: tables grow as 2**max_len; 2**15 symbols fit comfortably in 16 bits).
_MAX_TOKENS = 1 << 15


def _pack_huffman(enc: huffman.HuffmanEncoded) -> bytes:
    head = struct.pack("<QHI", enc.count, enc.max_len, enc.chunk_symbols.size)
    return b"".join([
        head,
        struct.pack("<I", enc.lengths.size), enc.lengths.tobytes(),
        enc.chunk_symbols.astype(np.int64).tobytes(),
        enc.chunk_bits.astype(np.int64).tobytes(),
        struct.pack("<Q", len(enc.payload)), enc.payload,
    ])


def _unpack_huffman(buf: bytes, pos: int) -> tuple[huffman.HuffmanEncoded, int]:
    count, max_len, nchunks = struct.unpack_from("<QHI", buf, pos)
    pos += struct.calcsize("<QHI")
    (nlen,) = struct.unpack_from("<I", buf, pos)
    pos += 4
    lengths = np.frombuffer(buf, dtype=np.uint8, count=nlen, offset=pos)
    pos += nlen
    chunk_symbols = np.frombuffer(buf, dtype=np.int64, count=nchunks, offset=pos)
    pos += 8 * nchunks
    chunk_bits = np.frombuffer(buf, dtype=np.int64, count=nchunks, offset=pos)
    pos += 8 * nchunks
    (plen,) = struct.unpack_from("<Q", buf, pos)
    pos += 8
    payload = buf[pos:pos + plen]
    if len(payload) != plen:
        raise CodecError("truncated LZ huffman payload")
    pos += plen
    return huffman.HuffmanEncoded(payload=payload,
                                  chunk_symbols=chunk_symbols,
                                  chunk_bits=chunk_bits, count=count,
                                  lengths=lengths, max_len=max_len), pos


def _try_byte_mode(data: bytes) -> bytes | None:
    buf = np.frombuffer(data, dtype=np.uint8)
    counts = np.bincount(buf, minlength=256)
    book = huffman.build_codebook(counts)
    enc = huffman.encode(buf, book)
    out = bytes([_MODE_BYTE]) + struct.pack("<Q", len(data)) + _pack_huffman(enc)
    return out if len(out) < len(data) else None


def _try_token_mode(data: bytes) -> bytes | None:
    if len(data) < 4 * _TOKEN_BYTES:
        return None
    pad = (-len(data)) % _TOKEN_BYTES
    padded = data + b"\x00" * pad
    tokens = np.frombuffer(padded, dtype=np.uint64)
    uniq, inverse = np.unique(tokens, return_inverse=True)
    if uniq.size > _MAX_TOKENS or uniq.size < 1:
        return None
    counts = np.bincount(inverse, minlength=uniq.size)
    book = huffman.build_codebook(counts)
    enc = huffman.encode(inverse.astype(np.uint32), book)
    out = b"".join([
        bytes([_MODE_TOKEN]),
        struct.pack("<QI", len(data), uniq.size),
        uniq.tobytes(),
        _pack_huffman(enc),
    ])
    return out if len(out) < len(data) else None


def compress(data: bytes) -> bytes:
    """Compress ``data``; never expands beyond 9 header bytes."""
    if len(data) == 0:
        return bytes([_MODE_STORED]) + struct.pack("<Q", 0)
    candidates = [bytes([_MODE_STORED]) + struct.pack("<Q", len(data)) + data]
    token = _try_token_mode(data)
    if token is not None:
        candidates.append(token)
    # Byte mode is most useful on small/medium payloads; on large payloads
    # only bother when token mode did not already win big.
    if len(data) <= (1 << 24) or token is None:
        byte_mode = _try_byte_mode(data)
        if byte_mode is not None:
            candidates.append(byte_mode)
    return min(candidates, key=len)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    if len(blob) < 9:
        raise CodecError("LZ container too short")
    mode = blob[0]
    if mode == _MODE_STORED:
        (n,) = struct.unpack_from("<Q", blob, 1)
        data = blob[9:9 + n]
        if len(data) != n:
            raise CodecError("truncated stored LZ payload")
        return data
    if mode == _MODE_BYTE:
        (n,) = struct.unpack_from("<Q", blob, 1)
        enc, _ = _unpack_huffman(blob, 9)
        out = huffman.decode(enc).astype(np.uint8).tobytes()
        if len(out) != n:
            raise CodecError("LZ byte-mode length mismatch")
        return out
    if mode == _MODE_TOKEN:
        n, nuniq = struct.unpack_from("<QI", blob, 1)
        pos = 1 + struct.calcsize("<QI")
        uniq = np.frombuffer(blob, dtype=np.uint64, count=nuniq, offset=pos)
        pos += 8 * nuniq
        enc, _ = _unpack_huffman(blob, pos)
        inverse = huffman.decode(enc)
        tokens = uniq[inverse]
        return tokens.tobytes()[:n]
    raise CodecError(f"unknown LZ mode {mode}")
