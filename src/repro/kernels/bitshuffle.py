"""Bit-plane shuffle (FZ-GPU / PFPL building block).

Bitshuffle transposes the bit matrix of a block of fixed-width integers so
that bit *i* of every value in the block becomes contiguous.  After zigzag
mapping, small residuals have all-zero high bit planes, so the shuffled
stream contains long zero runs that the dictionary/zero-elimination stages
remove.  The transform is lossless and self-inverse up to padding.

The implementation is one ``np.unpackbits`` / transpose / ``np.packbits``
per call — a direct data-parallel formulation of the GPU kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

#: Values per shuffle block.  4096 values x 16 bits -> 16 planes of 512 B.
BLOCK_VALUES = 4096


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,... -> 0,1,2,3,...

    Small-magnitude residuals map to small unsigned values, which is what
    makes bit planes sparse.
    """
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)
            ^ -(v & np.uint64(1)).astype(np.int64))


def _as_uint(values: np.ndarray, width_bits: int) -> np.ndarray:
    if width_bits == 16:
        dt = np.uint16
    elif width_bits == 32:
        dt = np.uint32
    else:
        raise CodecError("bitshuffle supports 16- or 32-bit values")
    v = np.asarray(values)
    if v.size and int(v.max(initial=0)) >> width_bits:
        raise CodecError(f"value does not fit in {width_bits} bits")
    return v.astype(dt)


def shuffle(values: np.ndarray, width_bits: int = 16,
            block: int = BLOCK_VALUES) -> bytes:
    """Bit-plane shuffle a 1-D unsigned integer array into bytes.

    The array is zero-padded to a multiple of ``block`` values; callers must
    remember the true count to undo the padding (see :func:`unshuffle`).
    """
    v = _as_uint(values, width_bits).reshape(-1)
    pad = (-v.size) % block
    if pad:
        v = np.concatenate([v, np.zeros(pad, dtype=v.dtype)])
    nblocks = v.size // block
    # bytes, big-endian within each value so plane 0 is the MSB plane.
    raw = v.reshape(nblocks, block).astype(v.dtype.newbyteorder(">"))
    bits = np.unpackbits(raw.view(np.uint8), axis=-1)
    # bits: (nblocks, block * width_bits) -> (nblocks, block, width_bits)
    bits = bits.reshape(nblocks, block, width_bits)
    planes = bits.transpose(0, 2, 1)  # (nblocks, width_bits, block)
    return np.packbits(planes.reshape(nblocks, -1), axis=-1).tobytes()


def unshuffle(payload: bytes, count: int, width_bits: int = 16,
              block: int = BLOCK_VALUES) -> np.ndarray:
    """Inverse of :func:`shuffle`; returns the first ``count`` values."""
    if width_bits not in (16, 32):
        raise CodecError("bitshuffle supports 16- or 32-bit values")
    padded = count + ((-count) % block)
    nblocks = padded // block
    expect = nblocks * block * width_bits // 8
    raw = np.frombuffer(payload, dtype=np.uint8)
    if raw.size != expect:
        raise CodecError(f"bitshuffle payload size {raw.size}, expected {expect}")
    if count == 0:
        return np.zeros(0, dtype=np.uint16 if width_bits == 16 else np.uint32)
    planes = np.unpackbits(raw.reshape(nblocks, -1), axis=-1)
    planes = planes.reshape(nblocks, width_bits, block)
    bits = planes.transpose(0, 2, 1).reshape(nblocks, block, width_bits)
    packed = np.packbits(bits.reshape(nblocks, -1), axis=-1)
    dt = np.dtype(np.uint16 if width_bits == 16 else np.uint32).newbyteorder(">")
    values = packed.reshape(-1).view(dt).astype(
        np.uint16 if width_bits == 16 else np.uint32)
    return values[:count]
