"""Cluster-level campaign I/O simulation.

The system context of the paper's introduction: a simulation running on
many nodes must drain snapshot data to the parallel filesystem, and the
PFS — not the compute — is the bottleneck ("high pressure onto
supercomputing subsystems (storage, memory, I/O)").  This module scales
the node model up: every node compresses its shard of a snapshot (the
:mod:`repro.parallel.node` driver), then all nodes write their compressed
bytes through a shared parallel-filesystem bandwidth.

The headline output is the cluster-level analogue of Equation (1):
``write speedup = raw-write time / (compress + compressed-write) time`` —
with the compute/write phases overlapped per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..perf.platform import PlatformSpec
from .link import TransferRequest, simulate_transfers
from .node import FieldJob, simulate_snapshot


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of GPU nodes sharing one filesystem."""

    nodes: int
    platform: PlatformSpec
    #: aggregate parallel-filesystem write bandwidth, bytes/s
    pfs_bandwidth: float
    #: per-node injection cap into the interconnect/PFS, bytes/s
    node_injection_bw: float = 25e9   # ~200 Gb/s NIC

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError("cluster needs at least one node")
        if self.pfs_bandwidth <= 0 or self.node_injection_bw <= 0:
            raise ConfigError("bandwidths must be positive")


@dataclass
class CampaignReport:
    """Outcome of one snapshot drain across the cluster."""

    makespan: float
    raw_write_seconds: float
    compute_seconds: float
    total_input_bytes: int
    total_output_bytes: int
    nodes: int

    @property
    def write_speedup(self) -> float:
        """Cluster analogue of Eq. (1): raw drain time over compressed
        drain time (compression included)."""
        return self.raw_write_seconds / self.makespan if self.makespan else 0.0

    @property
    def pfs_bytes_saved(self) -> int:
        return self.total_input_bytes - self.total_output_bytes


def simulate_campaign_write(jobs_per_node: list[FieldJob], compressor: str,
                            cluster: ClusterSpec) -> CampaignReport:
    """Drain one snapshot: every node compresses its shard, then writes.

    Per node, the shard's compression makespan comes from the node driver
    (GPU compute + host staging overlap); the node then streams its
    compressed bytes to the PFS, all nodes contending for
    ``pfs_bandwidth`` under max-min fairness with per-node injection caps.
    """
    if not jobs_per_node:
        raise ConfigError("empty shard")
    node_rep = simulate_snapshot(jobs_per_node, compressor, cluster.platform)
    # every node is identical (homogeneous cluster, identical shards), so
    # all nodes finish compressing at the same simulated time and write
    # concurrently
    requests = [TransferRequest(start=node_rep.makespan,
                                nbytes=float(node_rep.total_output_bytes),
                                link_peak=cluster.node_injection_bw)
                for _ in range(cluster.nodes)]
    done = simulate_transfers(requests, agg_bw=cluster.pfs_bandwidth)
    makespan = max(done)

    total_in = node_rep.total_input_bytes * cluster.nodes
    total_out = node_rep.total_output_bytes * cluster.nodes
    raw_requests = [TransferRequest(start=0.0,
                                    nbytes=float(node_rep.total_input_bytes),
                                    link_peak=cluster.node_injection_bw)
                    for _ in range(cluster.nodes)]
    raw_write = max(simulate_transfers(raw_requests,
                                       agg_bw=cluster.pfs_bandwidth))
    return CampaignReport(makespan=makespan, raw_write_seconds=raw_write,
                          compute_seconds=node_rep.makespan,
                          total_input_bytes=total_in,
                          total_output_bytes=total_out,
                          nodes=cluster.nodes)


def breakeven_nodes(jobs_per_node: list[FieldJob], compressor: str,
                    platform: PlatformSpec, pfs_bandwidth: float,
                    max_nodes: int = 1024) -> int | None:
    """Smallest cluster size at which compression wins over raw writes.

    On few nodes the PFS is not saturated and compression only adds
    latency; as the machine grows, the PFS becomes the bottleneck and
    compression pays off — the crossover the paper's introduction appeals
    to.  Returns None if compression never wins up to ``max_nodes``.
    """
    n = 1
    while n <= max_nodes:
        cluster = ClusterSpec(nodes=n, platform=platform,
                              pfs_bandwidth=pfs_bandwidth)
        rep = simulate_campaign_write(jobs_per_node, compressor, cluster)
        if rep.write_speedup > 1.0:
            return n
        n *= 2
    return None
