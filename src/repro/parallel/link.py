"""Shared-link contention model (progressive filling).

The paper measures host<->device bandwidth "when all four GPUs on the node
are reading/writing data" (multi-gpu-bwtest) and uses that *loaded* number
as Eq. (1)'s BW.  This module provides the underlying model: concurrent
transfers share the host's aggregate ingest capacity fairly, each transfer
additionally capped by its own per-GPU link peak.

:func:`simulate_transfers` is an exact event-driven simulation of
max-min-fair (progressive-filling) sharing: between events every active
transfer progresses at ``min(link_peak, agg_bw / n_active)``; events are
transfer arrivals and completions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TransferRequest:
    """One host<->device transfer."""

    start: float      # seconds, arrival time
    nbytes: float
    link_peak: float  # per-GPU cap, bytes/s

    def __post_init__(self) -> None:
        if self.nbytes <= 0 or self.link_peak <= 0 or self.start < 0:
            raise ConfigError("invalid transfer request")


def simulate_transfers(requests: list[TransferRequest],
                       agg_bw: float) -> list[float]:
    """Completion time of each request under max-min fair sharing.

    ``agg_bw`` is the host's aggregate capacity (bytes/s).  Returns the
    completion times in the order of ``requests``.
    """
    if agg_bw <= 0:
        raise ConfigError("aggregate bandwidth must be positive")
    n = len(requests)
    remaining = [float(r.nbytes) for r in requests]
    done = [0.0] * n
    active: set[int] = set()
    pending = sorted(range(n), key=lambda i: requests[i].start)
    t = 0.0
    pi = 0
    while pi < n or active:
        # next arrival
        next_arrival = requests[pending[pi]].start if pi < n else float("inf")
        if not active:
            t = next_arrival
            while pi < n and requests[pending[pi]].start <= t:
                active.add(pending[pi])
                pi += 1
            continue
        # current fair rates (equal split of the aggregate, per-link cap)
        share = agg_bw / len(active)
        rates = {i: min(requests[i].link_peak, share) for i in active}
        # time until the first completion at these rates
        t_complete = min(t + remaining[i] / rates[i] for i in active)
        t_next = min(t_complete, next_arrival)
        dt = t_next - t
        finished = []
        if dt <= 0.0:
            # float-precision guard: residual bytes too small to advance the
            # clock; retire the nearest-to-done transfer at the current time
            finished.append(min(active, key=lambda i: remaining[i]))
        else:
            for i in active:
                remaining[i] -= rates[i] * dt
                # completion tolerance relative to the transfer size
                if remaining[i] <= 1e-9 * max(requests[i].nbytes, 1.0):
                    finished.append(i)
        t = t_next
        for i in finished:
            active.discard(i)
            done[i] = t
        while pi < n and requests[pending[pi]].start <= t:
            active.add(pending[pi])
            pi += 1
    return done


def loaded_bandwidth(link_peak: float, agg_bw: float, ngpus: int) -> float:
    """Steady-state per-GPU bandwidth with ``ngpus`` saturating transfers.

    This is what multi-gpu-bwtest measures: ``min(link_peak, agg/ngpus)``.
    """
    if ngpus < 1:
        raise ConfigError("ngpus must be >= 1")
    return min(link_peak, agg_bw / ngpus)
