"""Multi-GPU node snapshot driver.

Models the paper's deployment context: a 4-way GPU node compressing a
multi-field snapshot.  Fields are assigned to GPUs round-robin; each GPU
compresses its fields back-to-back (compute time from the calibrated cost
model), and the compressed bytes drain to the host over the *shared* link
(contention model from :mod:`repro.parallel.link`).  Compute of field
``k+1`` overlaps the transfer of field ``k`` — the standard double-buffer
schedule.

The driver answers the questions a facility engineer asks: node-level
effective throughput, link utilisation, and how close the schedule is to
the compute- or transfer-bound roofline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..perf.costmodel import CALIBRATION, Calibration
from ..perf.estimator import RunStats, compression_cost
from ..perf.platform import PlatformSpec
from .link import TransferRequest, loaded_bandwidth, simulate_transfers


@dataclass(frozen=True)
class FieldJob:
    """One field to compress: its size and measured/assumed statistics."""

    name: str
    input_bytes: int
    cr: float
    code_fraction: float = 0.5
    outlier_fraction: float = 0.0
    interp_levels: int = 4


@dataclass
class NodeReport:
    """Outcome of a simulated node snapshot."""

    makespan: float
    compute_seconds: dict[str, float]      # per field
    transfer_done: dict[str, float]        # per field completion time
    gpu_busy: list[float]                  # per GPU
    total_input_bytes: int
    total_output_bytes: int
    ngpus: int

    @property
    def node_throughput(self) -> float:
        """Uncompressed bytes per second across the node."""
        return self.total_input_bytes / self.makespan if self.makespan else 0.0

    @property
    def link_bytes(self) -> int:
        return self.total_output_bytes

    def gpu_utilization(self) -> float:
        """Mean busy fraction across the node's GPUs."""
        span = self.makespan or 1.0
        return float(np.mean([b / span for b in self.gpu_busy]))


def measured_bandwidth(platform: PlatformSpec, ngpus: int | None = None
                       ) -> float:
    """Per-GPU loaded bandwidth — reproduces Table 1's 'Measured
    Bandwidth' row when ``ngpus`` equals the node's GPU count."""
    if ngpus is None:
        ngpus = platform.node_gpus
    return loaded_bandwidth(platform.gpu_link_peak, platform.host_agg_bw,
                            ngpus)


def simulate_snapshot(jobs: list[FieldJob], compressor: str,
                      platform: PlatformSpec, ngpus: int | None = None,
                      cal: Calibration = CALIBRATION) -> NodeReport:
    """Simulate compressing ``jobs`` on an ``ngpus``-way node.

    Per GPU, fields run back-to-back; each field's compressed output is a
    transfer request arriving when its compute finishes; the shared-link
    simulation yields drain times; the makespan is the last drain.
    """
    if not jobs:
        raise ConfigError("no fields to compress")
    if ngpus is None:
        ngpus = platform.node_gpus
    if ngpus < 1 or ngpus > platform.node_gpus:
        raise ConfigError(f"ngpus must be in [1, {platform.node_gpus}]")

    compute: dict[str, float] = {}
    out_bytes: dict[str, int] = {}
    for job in jobs:
        stats = RunStats(input_bytes=job.input_bytes, cr=job.cr,
                         code_fraction=job.code_fraction,
                         outlier_fraction=job.outlier_fraction,
                         interp_levels=job.interp_levels)
        cost = compression_cost(compressor, stats, platform, cal)
        # strip host-link stages: the node driver models transfers itself
        gpu_stages = [s for s in cost.stages
                      if s.resource.value in ("gpu", "cpu")]
        cost.stages = gpu_stages
        compute[job.name] = cost.seconds(platform, job.input_bytes, cal)
        out_bytes[job.name] = int(job.input_bytes / job.cr)

    # round-robin assignment; back-to-back compute per GPU
    gpu_clock = [0.0] * ngpus
    requests: list[TransferRequest] = []
    names: list[str] = []
    for k, job in enumerate(jobs):
        g = k % ngpus
        start = gpu_clock[g]
        end = start + compute[job.name]
        gpu_clock[g] = end
        requests.append(TransferRequest(start=end,
                                        nbytes=float(out_bytes[job.name]),
                                        link_peak=platform.gpu_link_peak))
        names.append(job.name)

    done = simulate_transfers(requests, agg_bw=platform.host_agg_bw)
    transfer_done = dict(zip(names, done))
    makespan = max(max(done), max(gpu_clock))
    return NodeReport(
        makespan=makespan, compute_seconds=compute,
        transfer_done=transfer_done, gpu_busy=list(gpu_clock),
        total_input_bytes=sum(j.input_bytes for j in jobs),
        total_output_bytes=sum(out_bytes.values()), ngpus=ngpus)


def scaling_series(jobs: list[FieldJob], compressor: str,
                   platform: PlatformSpec) -> dict[int, float]:
    """Node throughput for 1..node_gpus GPUs (the strong-scaling curve)."""
    return {g: simulate_snapshot(jobs, compressor, platform,
                                 ngpus=g).node_throughput
            for g in range(1, platform.node_gpus + 1)}
