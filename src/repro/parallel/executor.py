"""Sharded parallel compression engine.

The paper's pitch is concurrent, heterogeneous execution of composable
pipelines; this module is the OS-level realisation: a field is split into
slab shards (reusing the tiling policy of :mod:`repro.core.chunked`),
every shard is compressed as an independent container by a worker pool,
and the results are assembled into a *multi-shard container* that
:func:`repro.core.decompress` decodes — again in parallel — from the blob
alone.

Design points
-------------
* **Specs travel, modules don't.**  Workers receive the pipeline's
  :class:`~repro.core.spec.PipelineSpec` (names + radius, trivially
  picklable) and rebuild the pipeline against their own registry; module
  instances never cross the process boundary.
* **Shared-memory staging.**  For process workers the input field is
  placed in :mod:`multiprocessing.shared_memory` once; each worker maps
  its slab zero-copy.  Decompression reverses the trick: workers write
  their slab straight into a shared output buffer.
* **In-process fallback.**  Small fields (pool overhead would dominate),
  single-worker runs and custom registries (whose modules only exist in
  this process) use a thread pool instead; NumPy kernels release the GIL
  for most of their work, so even that overlaps.
* **Backpressure.**  Shard jobs are pumped through an
  :class:`~repro.runtime.stream.OrderedWorkQueue`: a bounded number of
  shards is in flight and results drain in submission order, so the
  assembled container is deterministic and memory stays bounded.
* **Determinism.**  Shard geometry depends only on shape/dtype/shard
  size, and REL bounds are resolved against the *global* range before
  sharding — the container is byte-identical for every worker count and
  backend, and shard semantics match :func:`repro.core.compress_tiled`.

Container layout (versions 1 and 2)::

    magic "FZMS" | u16 version | u32 header_len | u32 header_crc
    | header (JSON, UTF-8) | shard containers, back to back

The JSON header stores geometry, the resolved bound, the canonical
pipeline spec, the slab boundaries and a shard byte table.  Each shard is
a complete ``FZMD`` container with its own CRCs, so corruption anywhere
still fails loudly before a codec runs.

Version 3 is the *streaming* layout written by
:func:`repro.streaming.compress_stream` when the sink cannot be seeked:
the same prefix with ``header_len = header_crc = 0``, shard containers
back to back, then the JSON index and a fixed trailer::

    magic "FZMS" | u16 3 | u32 0 | u32 0
    | shard containers, back to back
    | index (JSON, UTF-8)
    | u64 index_offset | u32 index_len | u32 index_crc | magic "SMZF"

A writer can append shards as they complete and seal the file with one
trailing write; a reader seeks to the end, validates the trailer and
CRC, and then has random access to every shard.  Truncation anywhere
surfaces as a clean :class:`~repro.errors.CodecError` before any codec
runs.
"""

from __future__ import annotations

import copy
import json
import os
import secrets
import struct
import time
import zlib
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.chunked import TileGrid
from ..core.header import peek_header
from ..core.pipeline import (CompressedField, CompressionStats, Pipeline,
                             check_decode_out,
                             decompress as _decompress_container)
from ..core.registry import DEFAULT_REGISTRY, ModuleRegistry
from ..core.spec import PipelineSpec
from ..errors import (CodecError, ConfigError, HeaderError,
                      ModuleNotFoundInRegistry, PipelineError)
from ..kernels import huffman
from ..obs.spans import GLOBAL_TRACER, absorb_capture, export_capture, span
from ..runtime.stream import OrderedWorkQueue
from ..types import EbMode, ErrorBound, Stage, check_field

SHARD_MAGIC = b"FZMS"
#: highest container version this reader accepts; per-shard-codebook
#: containers are still written as version 1 (byte-identical with older
#: engines), shared-codebook containers as version 2, and the streaming
#: trailing-index layout as version 3
SHARD_VERSION = 3
#: version of the streaming (trailing-index) layout
STREAM_SHARD_VERSION = 3

_PREFIX = struct.Struct("<4sHII")
#: version-3 trailer: u64 index offset | u32 index len | u32 index crc
#: | end magic (the shard magic reversed, so a bare prefix can never be
#: mistaken for a trailer)
_TRAILER = struct.Struct("<QII4s")
TRAILER_MAGIC = b"SMZF"

#: entropy-codebook scopes of the sharded engine
CODEBOOK_MODES = ("per-shard", "shared")

#: default shard size (MiB of input data per shard)
DEFAULT_SHARD_MB = 32.0

#: below this input size the process pool never pays for itself
_PROCESS_THRESHOLD_BYTES = 8 << 20

#: in-flight shards per worker (the backpressure window)
_IN_FLIGHT_PER_WORKER = 2


def default_workers() -> int:
    """Worker count when the caller does not choose: one per visible CPU."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------- #
# shard geometry                                                          #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlan:
    """Deterministic slab decomposition of a field along axis 0.

    Built on :class:`~repro.core.chunked.TileGrid` (the chunking policy of
    the tiled reader) with full-extent tiles on every axis but the first,
    so shards are contiguous row ranges of a C-contiguous field.
    """

    shape: tuple[int, ...]
    dtype: str
    rows_per_shard: int

    def __post_init__(self) -> None:
        if not self.shape:
            raise ConfigError("cannot shard a 0-d field")
        if self.rows_per_shard < 1:
            raise ConfigError("rows_per_shard must be >= 1")

    @classmethod
    def for_field(cls, shape: tuple[int, ...], dtype: np.dtype,
                  shard_mb: float = DEFAULT_SHARD_MB) -> "ShardPlan":
        """Choose slab height so one shard holds ~``shard_mb`` MiB."""
        if shard_mb <= 0:
            raise ConfigError(f"shard_mb must be > 0, got {shard_mb}")
        dtype = np.dtype(dtype)
        row_bytes = int(np.prod(shape[1:], dtype=np.int64)) * dtype.itemsize
        rows = int(shard_mb * (1 << 20) // max(1, row_bytes))
        rows = max(1, min(rows, int(shape[0])))
        return cls(shape=tuple(int(n) for n in shape), dtype=dtype.str,
                   rows_per_shard=rows)

    @property
    def grid(self) -> TileGrid:
        return TileGrid(shape=self.shape,
                        tile=(self.rows_per_shard, *self.shape[1:]))

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Per-shard ``(start_row, stop_row)`` ranges, in order."""
        out = []
        for _, slices in self.grid.tiles():
            out.append((slices[0].start, slices[0].stop))
        return tuple(out)

    @property
    def count(self) -> int:
        return len(self.bounds)


# ---------------------------------------------------------------------- #
# multi-shard container                                                   #
# ---------------------------------------------------------------------- #
@dataclass
class ShardIndex:
    """Header of a multi-shard container.

    ``codebook_mode`` records the entropy-codebook scope the shards were
    written with.  In ``"shared"`` mode the index carries the canonical
    Huffman code lengths (one byte per symbol) that every shard encodes
    with; the shards themselves omit their ``enc.lengths`` section and the
    decoder injects these instead — the container stays self-describing.
    """

    shape: tuple[int, ...]
    dtype: str
    eb_value: float
    eb_mode: str
    eb_abs: float
    pipeline: dict                         # PipelineSpec JSON
    bounds: list[tuple[int, int]]          # per-shard row ranges
    table: list[tuple[int, int]] = None    # per-shard (offset, length)
    codebook_mode: str = "per-shard"
    codebook_lengths: list[int] | None = None

    def to_json(self) -> dict:
        """JSON-serialisable form of the index.

        Per-shard-codebook indexes omit the codebook keys entirely, so
        default-mode containers are byte-identical with those written
        before the shared mode existed.
        """
        obj = {
            "shape": list(self.shape),
            "dtype": self.dtype,
            "eb_value": self.eb_value,
            "eb_mode": self.eb_mode,
            "eb_abs": self.eb_abs,
            "pipeline": self.pipeline,
            "bounds": [[a, b] for a, b in self.bounds],
            "table": [[o, n] for o, n in self.table],
        }
        if self.codebook_mode != "per-shard":
            obj["codebook_mode"] = self.codebook_mode
            obj["codebook_lengths"] = list(self.codebook_lengths or [])
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "ShardIndex":
        try:
            return cls(
                shape=tuple(int(x) for x in obj["shape"]),
                dtype=str(obj["dtype"]),
                eb_value=float(obj["eb_value"]),
                eb_mode=str(obj["eb_mode"]),
                eb_abs=float(obj["eb_abs"]),
                pipeline=dict(obj["pipeline"]),
                bounds=[(int(a), int(b)) for a, b in obj["bounds"]],
                table=[(int(o), int(n)) for o, n in obj["table"]],
                codebook_mode=str(obj.get("codebook_mode", "per-shard")),
                codebook_lengths=(
                    [int(x) for x in obj["codebook_lengths"]]
                    if obj.get("codebook_lengths") is not None else None),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HeaderError(f"malformed shard index: {exc}") from exc

    def spec(self) -> PipelineSpec:
        """The canonical pipeline description the shards were written with."""
        return PipelineSpec.from_json(self.pipeline)

    def shared_lengths(self) -> np.ndarray | None:
        """The shared codebook as a ``uint8`` lengths array (or ``None``)."""
        if self.codebook_mode != "shared":
            return None
        if not self.codebook_lengths:
            raise HeaderError("shared-codebook index is missing its lengths")
        return np.asarray(self.codebook_lengths, dtype=np.uint8)

    @property
    def shard_count(self) -> int:
        return len(self.bounds)


@dataclass(frozen=True)
class ShardedCompressedField:
    """Output of :func:`compress_sharded` (the parallel engine's report).

    ``stats`` aggregates the per-shard measurements into one
    :class:`CompressionStats` (stage seconds are summed CPU-seconds across
    shards; ``wall_seconds`` is the engine's end-to-end time).
    """

    blob: bytes
    stats: CompressionStats
    shard_stats: tuple[CompressionStats, ...]
    index: ShardIndex
    workers: int
    backend: str
    wall_seconds: float
    codebook_mode: str = "per-shard"

    @property
    def nbytes(self) -> int:
        return len(self.blob)

    @property
    def shard_count(self) -> int:
        return len(self.shard_stats)


def is_sharded(blob: bytes) -> bool:
    """True when ``blob`` is a multi-shard (``FZMS``) container."""
    return bytes(blob[:len(SHARD_MAGIC)]) == SHARD_MAGIC


def pack_index(index: ShardIndex) -> tuple[bytes, int, int]:
    """Serialise an index to its wire JSON.

    Returns ``(json_bytes, crc, version)`` — the version being the
    header-first wire version (1 per-shard codebook, 2 shared) that
    :func:`assemble_sharded` and the streaming writer's compat layout
    both stamp, so the two paths stay byte-identical by construction.
    """
    hjson = json.dumps(index.to_json(), separators=(",", ":")).encode("utf-8")
    hcrc = zlib.crc32(hjson) & 0xFFFFFFFF
    version = 1 if index.codebook_mode == "per-shard" else 2
    return hjson, hcrc, version


def build_table(shard_lengths: list[int]) -> list[tuple[int, int]]:
    """Per-shard ``(offset, length)`` table for back-to-back shard blobs."""
    table = []
    offset = 0
    for length in shard_lengths:
        table.append((offset, length))
        offset += length
    return table


def load_index(hjson: bytes, hcrc: int, *, exc: type[Exception] = HeaderError
               ) -> ShardIndex:
    """Validate + deserialise index JSON, raising ``exc`` on corruption."""
    if (zlib.crc32(hjson) & 0xFFFFFFFF) != hcrc:
        raise exc("multi-shard index CRC mismatch; the blob is corrupt "
                  "or truncated")
    try:
        return ShardIndex.from_json(json.loads(hjson.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise exc(f"unreadable multi-shard index: {e}") from e
    except HeaderError as e:
        if exc is HeaderError:
            raise
        raise exc(str(e)) from e


def assemble_sharded(index: ShardIndex, shard_blobs: list[bytes]) -> bytes:
    """Serialise the index + shard containers into one blob."""
    index.table = build_table([len(b) for b in shard_blobs])
    hjson, hcrc, version = pack_index(index)
    return b"".join([_PREFIX.pack(SHARD_MAGIC, version, len(hjson), hcrc),
                     hjson, *shard_blobs])


def parse_trailer(tail: bytes, file_size: int) -> tuple[int, int, int]:
    """Decode a version-3 trailer (the last ``_TRAILER.size`` bytes).

    Returns ``(index_offset, index_len, index_crc)``; every structural
    problem — short file, bad end magic, index range outside the file —
    raises :class:`~repro.errors.CodecError` (truncation of a streamed
    container is a payload-level defect, not a header-parse one).
    """
    if len(tail) < _TRAILER.size:
        raise CodecError("streamed multi-shard container is truncated: "
                         "no room for the trailer")
    ioff, ilen, icrc, tmagic = _TRAILER.unpack_from(
        tail, len(tail) - _TRAILER.size)
    if tmagic != TRAILER_MAGIC:
        raise CodecError(
            f"bad streamed-container end magic {tmagic!r}; the trailing "
            "index was truncated or never sealed")
    if (ioff < _PREFIX.size
            or ioff + ilen + _TRAILER.size > file_size):
        raise CodecError("streamed-container trailer points outside the "
                         "blob; the trailing index is truncated")
    return ioff, ilen, icrc


def parse_sharded(blob: bytes) -> tuple[ShardIndex, list[bytes]]:
    """Split a multi-shard container (any version) into index + shards."""
    if len(blob) < _PREFIX.size:
        raise HeaderError("multi-shard container too short")
    magic, version, hlen, hcrc = _PREFIX.unpack_from(blob, 0)
    if magic != SHARD_MAGIC:
        raise HeaderError(f"bad multi-shard magic {magic!r}")
    if not (1 <= version <= SHARD_VERSION):
        raise HeaderError(f"unsupported multi-shard version {version}")
    start = _PREFIX.size
    if version >= STREAM_SHARD_VERSION:
        ioff, ilen, icrc = parse_trailer(blob[-_TRAILER.size:], len(blob))
        index = load_index(blob[ioff:ioff + ilen], icrc, exc=CodecError)
        body = blob[start:ioff]
        bad_table = CodecError
    else:
        if len(blob) < start + hlen:
            raise HeaderError("truncated multi-shard header")
        index = load_index(blob[start:start + hlen], hcrc)
        body = blob[start + hlen:]
        bad_table = HeaderError
    shards: list[bytes] = []
    for offset, length in index.table:
        if offset + length > len(body):
            raise bad_table("shard table exceeds container size")
        shards.append(bytes(body[offset:offset + length]))
    if len(shards) != len(index.bounds):
        raise bad_table("shard table / bounds length mismatch")
    return index, shards


def describe_sharded(blob: bytes) -> dict:
    """Structured description for ``fzmod inspect`` (no decoding)."""
    index, shards = parse_sharded(blob)
    return {
        "shape": list(index.shape),
        "dtype": index.dtype,
        "eb": f"{index.eb_value:g} ({index.eb_mode})",
        "eb_abs": index.eb_abs,
        "pipeline": index.pipeline,
        "codebook": index.codebook_mode,
        "shards": [{"rows": [a, b], "bytes": len(s)}
                   for (a, b), s in zip(index.bounds, shards)],
    }


# ---------------------------------------------------------------------- #
# stats aggregation                                                       #
# ---------------------------------------------------------------------- #
def combine_stats(shard_stats: list[CompressionStats],
                  output_bytes: int, eb_abs: float, *,
                  extra_seconds: dict[str, float] | None = None
                  ) -> CompressionStats:
    """Fold per-shard statistics into one combined report.

    Byte counts, outliers and section sizes are sums; fractions are
    re-derived from the summed byte counts (i.e. input-weighted); stage
    seconds are summed CPU-seconds (the work done, not the wall time —
    the whole point of the engine is that wall time is smaller).
    ``extra_seconds`` adds engine-level phases that run outside any shard
    (e.g. the shared-codebook histogram pass).
    """
    if not shard_stats:
        raise ConfigError("no shard statistics to combine")
    input_bytes = sum(s.input_bytes for s in shard_stats)
    sections: dict[str, int] = {}
    seconds: dict[str, float] = dict(extra_seconds or {})
    for s in shard_stats:
        for k, v in s.section_sizes.items():
            sections[k] = sections.get(k, 0) + v
        for k, v in s.stage_seconds.items():
            seconds[k] = seconds.get(k, 0.0) + v
    code_bytes = sum(s.code_fraction * s.input_bytes for s in shard_stats)
    outlier_bytes = sum(s.outlier_fraction * s.input_bytes
                        for s in shard_stats)
    return CompressionStats(
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        element_count=sum(s.element_count for s in shard_stats),
        eb_abs=eb_abs,
        code_fraction=code_bytes / input_bytes,
        outlier_fraction=outlier_bytes / input_bytes,
        outlier_count=sum(s.outlier_count for s in shard_stats),
        section_sizes=sections,
        stage_seconds=seconds,
        interp_levels=max(s.interp_levels for s in shard_stats))


# ---------------------------------------------------------------------- #
# worker entry points (top level: must be picklable for process pools)    #
# ---------------------------------------------------------------------- #
def _with_fixed_codebook(pipeline: Pipeline, lengths: np.ndarray) -> Pipeline:
    """A shallow pipeline clone whose encoder uses a pinned codebook.

    The registry instance is never touched (modules stay stateless); the
    clone's encoder skips statistics and omits the lengths section.
    """
    clone = copy.copy(pipeline)
    clone.encoder = pipeline.encoder.with_fixed_codebook(lengths)
    return clone


def _compress_shard_local(pipeline: Pipeline, shard: np.ndarray,
                          eb_abs: float, plan_key: str | None = None
                          ) -> tuple[bytes, CompressionStats, dict | None]:
    compiled = None
    if plan_key is not None:
        from ..compile import plan_from_key
        # the key the engine shipped resolves through this process's plan
        # cache (one trace per worker, not per shard); a digest mismatch
        # means this worker would compile something else — interpret then
        compiled = plan_from_key(pipeline, plan_key)
    with GLOBAL_TRACER.capture() as spans:
        with span("shard.compress", rows=int(shard.shape[0]),
                  plan=plan_key, bytes_in=int(shard.nbytes)) as sp:
            shard = np.ascontiguousarray(shard)
            eb = ErrorBound(eb_abs, EbMode.ABS)
            if compiled is not None:
                cf: CompressedField = compiled.compress(shard, eb, EbMode.ABS)
            else:
                cf = pipeline.compress(shard, eb, EbMode.ABS, compile=False)
            sp.set(bytes_out=len(cf.blob))
    return cf.blob, cf.stats, export_capture(spans)


def _compress_shard_shm(spec_json: dict, shm_name: str,
                        shape: tuple[int, ...], dtype: str,
                        start: int, stop: int, eb_abs: float,
                        lengths: bytes | None = None,
                        plan_key: str | None = None
                        ) -> tuple[bytes, CompressionStats, dict | None]:
    """Process-pool job: map the shared field, compress rows [start, stop).

    ``lengths`` (serialised ``uint8`` code lengths) pins the shard to a
    shared Huffman codebook instead of building one from its own stats;
    ``plan_key`` selects the compiled execution plan the parent resolved
    (``None`` = interpret).
    """
    spec = PipelineSpec.from_json(spec_json)
    pipeline = Pipeline.from_spec(spec, DEFAULT_REGISTRY)
    if lengths is not None:
        pipeline = _with_fixed_codebook(
            pipeline, np.frombuffer(lengths, dtype=np.uint8))
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        field = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        # copy the slab out so no view pins the mapping after close()
        shard = np.array(field[start:stop])
    finally:
        shm.close()
    return _compress_shard_local(pipeline, shard, eb_abs, plan_key)


def _compress_shard_bytes(spec_json: dict, raw: bytes,
                          shape: tuple[int, ...], dtype: str, eb_abs: float,
                          lengths: bytes | None = None,
                          plan_key: str | None = None
                          ) -> tuple[bytes, CompressionStats, dict | None]:
    """Process-pool job for the streaming engine: compress one slab that
    travelled as raw bytes (the source field never exists as one array in
    any process, so there is no shared-memory segment to map)."""
    spec = PipelineSpec.from_json(spec_json)
    pipeline = Pipeline.from_spec(spec, DEFAULT_REGISTRY)
    if lengths is not None:
        pipeline = _with_fixed_codebook(
            pipeline, np.frombuffer(lengths, dtype=np.uint8))
    shard = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
    return _compress_shard_local(pipeline, shard, eb_abs, plan_key)


def _histogram_shard_bytes(spec_json: dict, raw: bytes,
                           shape: tuple[int, ...], dtype: str, eb_abs: float
                           ) -> tuple[np.ndarray, dict | None]:
    """Process-pool job: histogram one slab shipped as raw bytes."""
    spec = PipelineSpec.from_json(spec_json)
    pipeline = Pipeline.from_spec(spec, DEFAULT_REGISTRY)
    shard = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
    return _histogram_shard_local(pipeline, shard, eb_abs)


def _histogram_shard_local(pipeline: Pipeline, shard: np.ndarray,
                           eb_abs: float
                           ) -> tuple[np.ndarray, dict | None]:
    """Histogram-pass job: quant-code counts of one shard (no encoding)."""
    shard = np.ascontiguousarray(shard)
    with GLOBAL_TRACER.capture() as spans:
        with span("shard.histogram", rows=int(shard.shape[0]),
                  bytes_in=int(shard.nbytes)) as sp:
            pre = pipeline.preprocess.forward(shard,
                                              ErrorBound(eb_abs, EbMode.ABS))
            arts = pipeline.predictor.encode(pre.data, pre.eb_abs,
                                             pipeline.radius)
            hist = pipeline.statistics.collect(arts.codes, pipeline.num_bins)
            sp.set(bytes_out=int(np.asarray(hist.counts).nbytes))
    return (np.asarray(hist.counts, dtype=np.int64),
            export_capture(spans))


def _histogram_shard_shm(spec_json: dict, shm_name: str,
                         shape: tuple[int, ...], dtype: str,
                         start: int, stop: int, eb_abs: float
                         ) -> tuple[np.ndarray, dict | None]:
    """Process-pool job: histogram rows [start, stop) of the shared field."""
    spec = PipelineSpec.from_json(spec_json)
    pipeline = Pipeline.from_spec(spec, DEFAULT_REGISTRY)
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        field = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        shard = np.array(field[start:stop])
    finally:
        shm.close()
    return _histogram_shard_local(pipeline, shard, eb_abs)


def _decode_plan_from_shipped_key(shard_blob: bytes,
                                  registry: ModuleRegistry,
                                  plan_key: str | None):
    """Resolve the decode plan the engine shipped (``None`` = interpret).

    The key resolves through this process's plan cache (one trace per
    worker, not per shard); a digest mismatch means this worker would
    compile something else — interpret then, exactly like the
    compress-side workers.
    """
    if plan_key is None:
        return None
    from ..compile import decode_plan_for_header
    plan = decode_plan_for_header(peek_header(shard_blob), registry)
    if plan is None or plan.key != plan_key:
        return None
    return plan


def _decompress_shard_shm(shard_blob: bytes, shm_name: str,
                          shape: tuple[int, ...], dtype: str,
                          start: int, stop: int,
                          lengths: bytes | None = None,
                          plan_key: str | None = None) -> dict | None:
    """Process-pool job: decode one shard into the shared output buffer.

    With a compiled decode plan the fused reconstruction dequantises
    straight into the shared-memory slab — the per-shard staging copy of
    the interpreted path disappears.
    """
    overrides = {"enc.lengths": lengths} if lengths is not None else None
    with GLOBAL_TRACER.capture() as spans:
        with span("shard.decompress", rows=int(stop - start),
                  plan=plan_key, bytes_in=len(shard_blob)) as sp:
            plan = _decode_plan_from_shipped_key(shard_blob, DEFAULT_REGISTRY,
                                                 plan_key)
            shm = shared_memory.SharedMemory(name=shm_name)
            try:
                field = np.ndarray(shape, dtype=np.dtype(dtype),
                                   buffer=shm.buf)
                sp.set(bytes_out=int(field[start:stop].nbytes))
                if plan is not None:
                    header, arts = plan.decode_entropy(
                        shard_blob, section_overrides=overrides)
                    plan.reconstruct(header, arts, out=field[start:stop])
                else:
                    field[start:stop] = _decompress_container(
                        shard_blob, DEFAULT_REGISTRY,
                        section_overrides=overrides, compile=False)
            finally:
                shm.close()
    return export_capture(spans)


def _decompress_shard_local(shard_blob: bytes, registry: ModuleRegistry,
                            lengths: bytes | None = None,
                            plan_key: str | None = None,
                            dest: np.ndarray | None = None
                            ) -> tuple[np.ndarray, dict | None]:
    """Thread-pool job: decode one shard (into ``dest`` when given)."""
    overrides = {"enc.lengths": lengths} if lengths is not None else None
    with GLOBAL_TRACER.capture() as spans:
        with span("shard.decompress", plan=plan_key,
                  bytes_in=len(shard_blob)) as sp:
            plan = _decode_plan_from_shipped_key(shard_blob, registry,
                                                 plan_key)
            if plan is not None:
                header, arts = plan.decode_entropy(
                    shard_blob, section_overrides=overrides)
                out = plan.reconstruct(header, arts, out=dest)
            else:
                out = _decompress_container(shard_blob, registry,
                                            section_overrides=overrides,
                                            compile=False, out=dest)
            sp.set(bytes_out=int(out.nbytes))
    return out, export_capture(spans)


# ---------------------------------------------------------------------- #
# backend selection                                                       #
# ---------------------------------------------------------------------- #
def _spec_resolvable(spec: PipelineSpec, registry: ModuleRegistry) -> bool:
    """Can ``registry`` rebuild this spec?  (Process workers use the
    default registry, so specs with process-local modules must stay
    in-process.)

    Only the *absence* of a module routes the job to the in-process
    fallback; any other error from a registry lookup is a real bug and
    propagates with its own context instead of silently degrading the
    backend choice.
    """
    pairs = [(Stage.PREPROCESS, spec.preprocess),
             (Stage.PREDICTOR, spec.predictor),
             (Stage.ENCODER, spec.encoder)]
    if spec.statistics is not None:
        pairs.append((Stage.STATISTICS, spec.statistics))
    if spec.secondary is not None:
        pairs.append((Stage.SECONDARY, spec.secondary))
    try:
        for stage, name in pairs:
            registry.get(stage, name)
    except ModuleNotFoundInRegistry:
        return False
    return True


def _choose_backend(backend: str | None, workers: int, nbytes: int,
                    spec: PipelineSpec, registry: ModuleRegistry,
                    shard_count: int) -> str:
    if backend is not None:
        if backend not in ("process", "inprocess"):
            raise ConfigError(f"unknown executor backend {backend!r}; "
                              "expected 'process' or 'inprocess'")
        if backend == "process" and not _spec_resolvable(spec,
                                                         DEFAULT_REGISTRY):
            raise ConfigError(
                "process backend requires every spec module to exist in the "
                "default registry (module instances cannot be shipped to "
                "worker processes)")
        return backend
    if (workers <= 1 or shard_count <= 1
            or nbytes < _PROCESS_THRESHOLD_BYTES
            or registry is not DEFAULT_REGISTRY
            or not _spec_resolvable(spec, DEFAULT_REGISTRY)):
        return "inprocess"
    return "process"


def _make_pool(backend: str, workers: int) -> Executor:
    if backend == "process":
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)


def _shm_create(nbytes: int) -> shared_memory.SharedMemory:
    # a random name avoids collisions across concurrent engines; Python
    # would generate one anyway, but an explicit fzmod prefix eases
    # debugging of leaked segments under /dev/shm
    return shared_memory.SharedMemory(
        # fzlint: disable-next-line=FZL004 -- the segment name exists only
        # for the life of the pool and never reaches serialized bytes
        name=f"fzmod_{secrets.token_hex(8)}", create=True, size=nbytes)


# ---------------------------------------------------------------------- #
# the engine                                                              #
# ---------------------------------------------------------------------- #
def _build_shared_codebook(counts: np.ndarray, pipeline: Pipeline
                           ) -> np.ndarray:
    """One canonical codebook for the whole field, as a lengths array."""
    max_len = getattr(pipeline.encoder, "max_len", huffman.DEFAULT_MAX_LEN)
    book = huffman.build_codebook(counts, max_len=max_len)
    return book.lengths


def _drain_histograms(queue: OrderedWorkQueue) -> np.ndarray:
    """Sum histogram results, absorbing each shard's spans in order."""
    total = None
    for k, (counts, payload) in enumerate(queue.drain()):
        absorb_capture(payload, lane=f"shard:{k}")
        total = counts if total is None else total + counts
    return total


def _resolve_plan_key(pipeline: Pipeline, compile_mode) -> str | None:
    """The plan key shipped to shard workers (``None`` = interpret)."""
    plan = pipeline._resolve_plan(compile_mode)
    return None if plan is None else plan.key


def compress_sharded(data: np.ndarray,
                     pipeline: Pipeline | PipelineSpec,
                     eb: ErrorBound | float,
                     mode: EbMode | str = EbMode.REL, *,
                     workers: int | None = None,
                     shard_mb: float | None = None,
                     registry: ModuleRegistry = DEFAULT_REGISTRY,
                     backend: str | None = None,
                     codebook: str | None = None,
                     compile="auto") -> ShardedCompressedField:
    """Compress ``data`` shard-parallel into a multi-shard container.

    ``pipeline`` may be an assembled :class:`Pipeline` or a bare
    :class:`PipelineSpec` (built against ``registry``).  REL bounds are
    resolved against the *global* value range before sharding, so the
    reconstruction contract equals the unsharded pipeline's.  The blob is
    byte-identical for every ``workers`` value and backend.

    ``codebook="shared"`` (Huffman pipelines only) runs a two-pass
    engine: a parallel histogram pass over the shards, one global
    codebook build from the summed counts, then a parallel encode pass
    with that codebook pinned in every worker — one package-merge run
    instead of one per shard, and the codebook stored once in the index
    instead of once per shard.  Shared-mode blobs are still
    deterministic across worker counts and decode self-describingly.

    ``compile`` selects the worker execution path (``"auto"`` / ``True``
    / ``False``, as in :meth:`Pipeline.compress`): the parent resolves
    the compiled plan once and ships its content key to the workers, who
    trace at most once per process instead of once per shard.  Compiled
    and interpreted shards are byte-identical.
    """
    t_start = time.perf_counter()
    data = check_field(data)
    if isinstance(pipeline, PipelineSpec):
        pipeline = Pipeline.from_spec(pipeline, registry)
    spec = pipeline.spec
    # validate the compile mode (and fail a required compile) before any
    # pool or shared-memory setup
    pipeline._resolve_plan(compile)
    if codebook is None:
        codebook = "per-shard"
    if codebook not in CODEBOOK_MODES:
        raise ConfigError(f"unknown codebook mode {codebook!r}; expected "
                          f"one of {CODEBOOK_MODES}")
    if codebook == "shared" and spec.encoder != "huffman":
        raise ConfigError(
            "shared-codebook sharding requires the 'huffman' encoder "
            f"(pipeline uses {spec.encoder!r})")
    if not isinstance(eb, ErrorBound):
        eb = ErrorBound(float(eb), EbMode(mode))
    eb_abs = eb.absolute(float(data.min()), float(data.max()))
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    plan = ShardPlan.for_field(data.shape, data.dtype,
                               DEFAULT_SHARD_MB if shard_mb is None
                               else shard_mb)
    bounds = plan.bounds
    chosen = _choose_backend(backend, workers, data.nbytes, spec, registry,
                             len(bounds))
    workers = min(workers, len(bounds))

    with span("engine.compress_sharded", shards=len(bounds),
              workers=workers, backend=chosen,
              bytes_in=int(data.nbytes)) as engine_sp:
        shard_blobs: list[bytes] = []
        shard_stats: list[CompressionStats] = []
        extra_seconds: dict[str, float] = {}
        shared_lengths: np.ndarray | None = None
        in_flight = _IN_FLIGHT_PER_WORKER * workers
        if chosen == "process":
            shm = _shm_create(data.nbytes)
            try:
                staged = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
                staged[...] = data
                with _make_pool("process", workers) as pool:
                    if codebook == "shared":
                        t0 = time.perf_counter()
                        with span("engine.codebook", shards=len(bounds),
                                  bytes_in=int(data.nbytes)) as sp:
                            queue = OrderedWorkQueue(pool,
                                                     max_in_flight=in_flight)
                            for start, stop in bounds:
                                queue.submit(_histogram_shard_shm, spec.to_json(),
                                             shm.name, data.shape, data.dtype.str,
                                             start, stop, eb_abs)
                            counts = _drain_histograms(queue)
                            shared_lengths = _build_shared_codebook(counts,
                                                                    pipeline)
                            sp.set(bytes_out=int(shared_lengths.nbytes))
                        extra_seconds["codebook"] = time.perf_counter() - t0
                    lengths_blob = (None if shared_lengths is None
                                    else shared_lengths.tobytes())
                    plan_key = _resolve_plan_key(
                        pipeline if shared_lengths is None
                        else _with_fixed_codebook(pipeline, shared_lengths),
                        compile)
                    queue = OrderedWorkQueue(pool, max_in_flight=in_flight)
                    for start, stop in bounds:
                        queue.submit(_compress_shard_shm, spec.to_json(),
                                     shm.name, data.shape, data.dtype.str,
                                     start, stop, eb_abs, lengths_blob,
                                     plan_key)
                    for k, (blob, stats, payload) in enumerate(queue.drain()):
                        absorb_capture(payload, lane=f"shard:{k}")
                        shard_blobs.append(blob)
                        shard_stats.append(stats)
            finally:
                shm.close()
                shm.unlink()
        else:
            with _make_pool("inprocess", workers) as pool:
                if codebook == "shared":
                    t0 = time.perf_counter()
                    with span("engine.codebook", shards=len(bounds),
                              bytes_in=int(data.nbytes)) as sp:
                        queue = OrderedWorkQueue(pool, max_in_flight=in_flight)
                        for start, stop in bounds:
                            queue.submit(_histogram_shard_local, pipeline,
                                         data[start:stop], eb_abs)
                        counts = _drain_histograms(queue)
                        shared_lengths = _build_shared_codebook(counts, pipeline)
                        sp.set(bytes_out=int(shared_lengths.nbytes))
                    extra_seconds["codebook"] = time.perf_counter() - t0
                enc_pipeline = (pipeline if shared_lengths is None
                                else _with_fixed_codebook(pipeline,
                                                          shared_lengths))
                plan_key = _resolve_plan_key(enc_pipeline, compile)
                queue = OrderedWorkQueue(pool, max_in_flight=in_flight)
                for start, stop in bounds:
                    queue.submit(_compress_shard_local, enc_pipeline,
                                 data[start:stop], eb_abs, plan_key)
                for k, (blob, stats, payload) in enumerate(queue.drain()):
                    absorb_capture(payload, lane=f"shard:{k}")
                    shard_blobs.append(blob)
                    shard_stats.append(stats)

        index = ShardIndex(shape=data.shape, dtype=data.dtype.str,
                           eb_value=eb.value, eb_mode=eb.mode.value,
                           eb_abs=eb_abs, pipeline=spec.to_json(),
                           bounds=list(bounds), codebook_mode=codebook,
                           codebook_lengths=(
                               None if shared_lengths is None
                               else [int(x) for x in shared_lengths]))
        blob = assemble_sharded(index, shard_blobs)
        stats = combine_stats(shard_stats, len(blob), eb_abs,
                              extra_seconds=extra_seconds)
        engine_sp.set(bytes_out=len(blob))
    return ShardedCompressedField(
        blob=blob, stats=stats, shard_stats=tuple(shard_stats), index=index,
        workers=workers, backend=chosen,
        wall_seconds=time.perf_counter() - t_start,
        codebook_mode=codebook)


def _resolve_decode_plan(index: ShardIndex, registry: ModuleRegistry,
                         compile_mode):
    """The compiled decode plan for a shard index (``None`` = interpret).

    ``compile=True`` demands a compiled decode and raises with the
    decline reason; ``"auto"`` falls back silently, exactly as
    :func:`repro.core.decompress` does for single containers.
    """
    if compile_mode is False:
        return None
    if compile_mode is not True and compile_mode != "auto":
        raise PipelineError(
            f"compile must be 'auto', True or False, got {compile_mode!r}")
    from ..compile import decode_decline_reason, decode_plan_for
    try:
        pipeline = Pipeline.from_spec(index.spec(), registry)
    except ModuleNotFoundInRegistry:
        if compile_mode is True:
            raise
        return None
    plan = decode_plan_for(pipeline)
    if plan is None and compile_mode is True:
        raise PipelineError(
            f"pipeline {pipeline.name!r} cannot be compile-decoded: "
            f"{decode_decline_reason(pipeline)}")
    return plan


def _resolve_decode_key(index: ShardIndex, registry: ModuleRegistry,
                        compile_mode) -> str | None:
    """The decode-plan key shipped to decode workers (``None`` = interpret)."""
    plan = _resolve_decode_plan(index, registry, compile_mode)
    return None if plan is None else plan.key


def decompress_sharded(blob: bytes, *, workers: int | None = None,
                       registry: ModuleRegistry = DEFAULT_REGISTRY,
                       backend: str | None = None,
                       compile="auto",
                       out: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct a field from a multi-shard container, shard-parallel.

    Header-driven like single-container decompression: the index stores
    the pipeline spec, so the blob alone suffices for any process with
    the same modules registered.

    ``compile`` selects the worker decode path (``"auto"`` / ``True`` /
    ``False``): the engine resolves the compiled decode plan once from
    the index spec and ships its content key to the workers, whose fused
    reconstruction dequantises straight into the output slab.  Compiled
    and interpreted decodes are value-identical.  ``out`` receives the
    field in place (and is returned) when supplied.
    """
    index, shards = parse_sharded(blob)
    dtype = np.dtype(index.dtype)
    if out is not None:
        check_decode_out(out, index.shape, dtype)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    nbytes = int(np.prod(index.shape, dtype=np.int64)) * dtype.itemsize
    chosen = _choose_backend(backend, workers, nbytes, index.spec(), registry,
                             len(shards))
    workers = min(workers, len(shards))
    shared = index.shared_lengths()
    lengths_blob = None if shared is None else shared.tobytes()
    plan_key = _resolve_decode_key(index, registry, compile)

    with span("engine.decompress_sharded", shards=len(shards),
              workers=workers, backend=chosen,
              compiled=plan_key is not None,
              bytes_in=len(blob), bytes_out=nbytes):
        if chosen == "process":
            shm = _shm_create(nbytes)
            try:
                with _make_pool("process", workers) as pool:
                    queue = OrderedWorkQueue(
                        pool, max_in_flight=_IN_FLIGHT_PER_WORKER * workers)
                    for shard_blob, (start, stop) in zip(shards, index.bounds):
                        queue.submit(_decompress_shard_shm, shard_blob, shm.name,
                                     index.shape, index.dtype, start, stop,
                                     lengths_blob, plan_key)
                    for k, payload in enumerate(queue.drain()):
                        absorb_capture(payload, lane=f"shard:{k}")
                staged = np.ndarray(index.shape, dtype=dtype, buffer=shm.buf)
                if out is None:
                    out = staged.copy()
                else:
                    out[...] = staged
            finally:
                shm.close()
                shm.unlink()
            return out

        if out is None:
            out = np.empty(index.shape, dtype=dtype)
        with _make_pool("inprocess", workers) as pool:
            queue = OrderedWorkQueue(
                pool, max_in_flight=_IN_FLIGHT_PER_WORKER * workers)
            for shard_blob, (start, stop) in zip(shards, index.bounds):
                queue.submit(_decompress_shard_local, shard_blob, registry,
                             lengths_blob, plan_key, out[start:stop])
            for k, ((start, stop), (shard, payload)) in enumerate(
                    zip(index.bounds, queue.drain())):
                absorb_capture(payload, lane=f"shard:{k}")
                expected = (stop - start, *index.shape[1:])
                if shard.shape != expected:
                    raise HeaderError(
                        f"shard rows {start}:{stop} decoded to shape "
                        f"{shard.shape}, expected {expected}")
        return out
