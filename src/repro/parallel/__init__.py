"""Multi-GPU node simulation: shared-link contention + snapshot driver.

Reproduces the measurement context of Table 1 (loaded bandwidth with all
four GPUs transferring) and models node-level snapshot compression with
compute/transfer overlap.
"""

from .cluster import (CampaignReport, ClusterSpec, breakeven_nodes,
                      simulate_campaign_write)
from .link import TransferRequest, loaded_bandwidth, simulate_transfers
from .node import (FieldJob, NodeReport, measured_bandwidth, scaling_series,
                   simulate_snapshot)

__all__ = [
    "CampaignReport", "ClusterSpec", "breakeven_nodes",
    "simulate_campaign_write",
    "TransferRequest", "loaded_bandwidth", "simulate_transfers",
    "FieldJob", "NodeReport", "measured_bandwidth", "scaling_series",
    "simulate_snapshot",
]
