"""Parallel execution: the sharded compression engine + node simulation.

:mod:`repro.parallel.executor` is the real OS-level engine: it shards a
field, compresses shards concurrently on a worker pool (processes with
shared-memory staging, or an in-process pool for small inputs), and
assembles a multi-shard container that decodes in parallel from the blob
alone.

The simulation side reproduces the measurement context of Table 1
(loaded bandwidth with all four GPUs transferring) and models node-level
snapshot compression with compute/transfer overlap.

The package-level ``compress_sharded`` / ``decompress_sharded`` are
deprecated delegating shims: new code calls :func:`repro.compress` /
:func:`repro.decompress` (the :mod:`repro.api` facade), which dispatch
here by argument shape; engine internals keep importing from
:mod:`repro.parallel.executor` directly.
"""

import warnings as _warnings

from .cluster import (CampaignReport, ClusterSpec, breakeven_nodes,
                      simulate_campaign_write)
from .executor import (CODEBOOK_MODES, DEFAULT_SHARD_MB,
                       ShardedCompressedField, ShardIndex, ShardPlan,
                       default_workers, describe_sharded, is_sharded,
                       parse_sharded)
from .executor import (compress_sharded as _compress_sharded,
                       decompress_sharded as _decompress_sharded)
from .link import TransferRequest, loaded_bandwidth, simulate_transfers
from .node import (FieldJob, NodeReport, measured_bandwidth, scaling_series,
                   simulate_snapshot)


def compress_sharded(*args, **kwargs):
    """Deprecated shim for :func:`repro.parallel.executor.compress_sharded`.

    Use :func:`repro.compress` (the :mod:`repro.api` facade) with
    ``workers=``/``shard_mb=`` instead; it dispatches to the sharded
    engine with the same keywords.
    """
    _warnings.warn(
        "repro.parallel.compress_sharded is deprecated; use "
        "repro.compress(data, spec, eb, workers=...) instead",
        DeprecationWarning, stacklevel=2)
    return _compress_sharded(*args, **kwargs)


def decompress_sharded(*args, **kwargs):
    """Deprecated shim for :func:`repro.parallel.executor.decompress_sharded`.

    Use :func:`repro.decompress` (the :mod:`repro.api` facade) instead;
    it detects multi-shard containers by magic.
    """
    _warnings.warn(
        "repro.parallel.decompress_sharded is deprecated; use "
        "repro.decompress(blob, workers=...) instead",
        DeprecationWarning, stacklevel=2)
    return _decompress_sharded(*args, **kwargs)


__all__ = [
    "CampaignReport", "ClusterSpec", "breakeven_nodes",
    "simulate_campaign_write",
    "CODEBOOK_MODES", "DEFAULT_SHARD_MB",
    "ShardedCompressedField", "ShardIndex", "ShardPlan",
    "compress_sharded", "decompress_sharded", "default_workers",
    "describe_sharded", "is_sharded", "parse_sharded",
    "TransferRequest", "loaded_bandwidth", "simulate_transfers",
    "FieldJob", "NodeReport", "measured_bandwidth", "scaling_series",
    "simulate_snapshot",
]
