"""Parallel execution: the sharded compression engine + node simulation.

:mod:`repro.parallel.executor` is the real OS-level engine: it shards a
field, compresses shards concurrently on a worker pool (processes with
shared-memory staging, or an in-process pool for small inputs), and
assembles a multi-shard container that decodes in parallel from the blob
alone.

The simulation side reproduces the measurement context of Table 1
(loaded bandwidth with all four GPUs transferring) and models node-level
snapshot compression with compute/transfer overlap.
"""

from .cluster import (CampaignReport, ClusterSpec, breakeven_nodes,
                      simulate_campaign_write)
from .executor import (CODEBOOK_MODES, DEFAULT_SHARD_MB,
                       ShardedCompressedField, ShardIndex, ShardPlan,
                       compress_sharded, decompress_sharded, default_workers,
                       describe_sharded, is_sharded, parse_sharded)
from .link import TransferRequest, loaded_bandwidth, simulate_transfers
from .node import (FieldJob, NodeReport, measured_bandwidth, scaling_series,
                   simulate_snapshot)

__all__ = [
    "CampaignReport", "ClusterSpec", "breakeven_nodes",
    "simulate_campaign_write",
    "CODEBOOK_MODES", "DEFAULT_SHARD_MB",
    "ShardedCompressedField", "ShardIndex", "ShardPlan",
    "compress_sharded", "decompress_sharded", "default_workers",
    "describe_sharded", "is_sharded", "parse_sharded",
    "TransferRequest", "loaded_bandwidth", "simulate_transfers",
    "FieldJob", "NodeReport", "measured_bandwidth", "scaling_series",
    "simulate_snapshot",
]
