#!/usr/bin/env python3
"""Node-scale snapshot workflow: archive a whole dataset, model the node.

Combines three subsystems: per-field compression into one `.fzar` archive
(with per-field pipeline choice), the shared-link node simulation that
reproduces Table 1's loaded-bandwidth methodology, and the target-quality
search that picks bounds from a PSNR requirement instead of guessing.

    python examples/snapshot_node.py
"""

from __future__ import annotations

import numpy as np

from repro import fzmod_default, fzmod_speed
from repro.core import Archive, ArchiveWriter, compress_to_target
from repro.data import get_dataset
from repro.parallel import FieldJob, measured_bandwidth, simulate_snapshot
from repro.perf import H100, V100


def main() -> None:
    spec = get_dataset("nyx")
    scale = 0.08

    # 1. pick the bound per field from a quality requirement (>= 80 dB)
    print("== target search: loosest bound reaching 80 dB per field ==")
    writer = ArchiveWriter()
    jobs: list[FieldJob] = []
    for field in spec.fields[:4]:
        data = spec.load(field=field, scale=scale)
        res = compress_to_target(data, fzmod_default(), "psnr", 80.0)
        writer.add_compressed(field, res.compressed,
                              pipeline_name="fzmod-default")
        s = res.compressed.stats
        jobs.append(FieldJob(name=field, input_bytes=spec.field_size_bytes,
                             cr=s.cr, code_fraction=s.code_fraction,
                             outlier_fraction=s.outlier_fraction))
        print(f"  {field:<22} eb={res.eb:9.3g}  CR={s.cr:7.1f}  "
              f"PSNR={res.achieved:6.1f} dB  "
              f"({'converged' if res.converged else 'endpoint'})")

    # 2. one archive for the snapshot
    blob = writer.to_bytes()
    ar = Archive(blob)
    stats = ar.total_stats()
    print(f"\narchive: {int(stats['fields'])} fields, "
          f"{stats['uncompressed_bytes'] / 1e6:.1f} MB -> "
          f"{stats['compressed_bytes'] / 1e6:.2f} MB "
          f"(CR {stats['cr']:.1f})")
    restored = ar.read(spec.fields[0])
    print(f"spot-check decode of {spec.fields[0]!r}: shape {restored.shape}")

    # 3. what does this snapshot cost on the paper's nodes?
    print("\n== node simulation (full-size fields, 4-way GPU nodes) ==")
    for plat in (H100, V100):
        rep = simulate_snapshot(jobs, "fzmod-default", plat)
        raw = sum(j.input_bytes for j in jobs) / plat.host_agg_bw
        print(f"  {plat.name:<12} loaded link "
              f"{measured_bandwidth(plat) / 1e9:5.2f} GB/s/GPU | "
              f"snapshot {rep.makespan:6.3f} s "
              f"(raw transfer {raw:6.3f} s, "
              f"{raw / rep.makespan:4.1f}x win) | "
              f"GPU util {rep.gpu_utilization():.0%}")


if __name__ == "__main__":
    main()
