#!/usr/bin/env python3
"""Domain scenario: HACC particle checkpointing under an I/O budget.

HACC (the paper's hardest dataset) writes six 1-D particle arrays per
snapshot; positions compress well at loose bounds but collapse toward
CR ~ 2 at tight ones.  This example sweeps error bounds, reports the CR /
fidelity / end-to-end-speedup trade per field, and answers the operational
question: *what is the loosest bound that still wins over raw transfer on
each platform?*

    python examples/hacc_checkpoint.py
"""

from __future__ import annotations

import numpy as np

from repro import fzmod_default
from repro.baselines import get_compressor
from repro.data import get_dataset
from repro.metrics import overall_speedup, psnr
from repro.perf import H100, V100, RunStats, estimate_throughput

EBS = (1e-2, 1e-3, 1e-4, 1e-5)


def sweep_field(field: str, data: np.ndarray) -> None:
    spec = get_dataset("hacc")
    comp = get_compressor("fzmod-default")
    print(f"\n-- field {field!r}, {data.size:,} particles --")
    print(f"{'eb':>7} {'CR':>7} {'PSNR dB':>8} "
          f"{'speedup H100':>13} {'speedup V100':>13}")
    for eb in EBS:
        cf = comp.compress(data, eb)
        recon = comp.decompress(cf)
        stats = RunStats(input_bytes=spec.field_size_bytes, cr=cf.stats.cr,
                         code_fraction=cf.stats.code_fraction,
                         outlier_fraction=cf.stats.outlier_fraction)
        row = []
        for plat in (H100, V100):
            th = estimate_throughput("fzmod-default", stats, plat)
            row.append(overall_speedup(cf.stats.cr, th.compress_bps,
                                       plat.measured_link_bw))
        print(f"{eb:>7g} {cf.stats.cr:>7.2f} {psnr(data, recon):>8.1f} "
              f"{row[0]:>13.2f} {row[1]:>13.2f}")


def main() -> None:
    spec = get_dataset("hacc")
    print("HACC checkpoint compression with FZMod-Default "
          "(value-range-relative bounds)")
    for field in ("x", "vx"):
        data = spec.load(field=field, scale=0.002)
        sweep_field(field, data)

    print("\nReading the table: positions ('x') keep spatial locality from")
    print("rank-ordered storage and compress well at loose bounds, while")
    print("velocities ('vx') are nearly white and barely beat CR 4 anywhere;")
    print("on the V100's slow loaded link even modest CRs pay off, exactly")
    print("the hardware dependence Figures 2-3 of the paper demonstrate.")


if __name__ == "__main__":
    main()
