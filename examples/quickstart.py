#!/usr/bin/env python3
"""Quickstart: compress a scientific field with an error bound.

Runs the default FZModules pipeline (Lorenzo predictor + histogram +
Huffman) on a synthetic Nyx cosmology field, verifies the error bound,
and prints the numbers that matter: compression ratio, bit rate, PSNR.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import compress, decompress
from repro.data import load_field
from repro.metrics import bit_rate, max_abs_error, psnr


def main() -> None:
    # 1. get a field — swap in `np.fromfile(...)` for your own data
    field = load_field("nyx", "temperature", scale=0.1)
    print(f"field: {field.shape} {field.dtype}, "
          f"{field.nbytes / 1e6:.1f} MB")

    # 2. compress under a value-range-relative bound of 1e-4 — the
    #    facade takes a preset name (or a PipelineSpec / Pipeline) and
    #    runs the fused compiled plan when the pipeline supports it
    compressed = compress(field, "fzmod-default", 1e-4)
    s = compressed.stats
    print(f"compressed: {s.output_bytes / 1e6:.3f} MB  "
          f"CR={s.cr:.1f}  bitrate={s.bit_rate:.3f} bits/value")

    # 3. decompress — works from the blob alone, anywhere the library is
    #    installed (the container header names the modules used)
    restored = decompress(compressed)

    # 4. verify the contract
    value_range = float(field.max() - field.min())
    err = max_abs_error(field, restored)
    print(f"max error: {err:.4g}  (bound: {1e-4 * value_range:.4g})")
    print(f"PSNR: {psnr(field, restored):.1f} dB")
    assert err <= 1e-4 * value_range * 1.0001

    # 5. per-stage timing breakdown of the compression run
    for stage, seconds in s.stage_seconds.items():
        print(f"  {stage:<12} {seconds * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
