#!/usr/bin/env python3
"""Choosing a compressor for *analysis*, not just for size.

§4.3.3's warning: general-purpose settings that look fine by PSNR can
destroy derived quantities.  This example runs the one-stop evaluation
(`repro.report`) on a Nyx field and then digs into the post-analysis
metrics — spectra, gradients, distributions — that decide whether a lossy
setting is scientifically safe.

    python examples/fidelity_report.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import get_compressor
from repro.data import get_dataset
from repro.metrics import (gradient_fidelity, histogram_intersection,
                           psnr, spectral_fidelity, ssim)
from repro.report import evaluate


def main() -> None:
    spec = get_dataset("nyx")
    field = spec.load(field="velocity_x", scale=0.08)

    print("== head-to-head report (Nyx velocity_x) ==")
    rep = evaluate(field, ebs=(1e-2, 1e-4),
                   compressors=("fzmod-default", "fzmod-speed", "sz3",
                                "cuszp2"),
                   full_size_bytes=spec.field_size_bytes)
    print(rep.table())

    print("\n== post-analysis fidelity at eb=1e-2 "
          "(same PSNR class, different physics) ==")
    print(f"{'compressor':<15} {'PSNR':>7} {'SSIM':>7} {'spectrum':>9} "
          f"{'grad dB':>8} {'hist':>6}")
    for name in ("fzmod-default", "fzmod-speed", "sz3", "cuszp2"):
        comp = get_compressor(name)
        recon = comp.decompress(comp.compress(field, 1e-2))
        print(f"{name:<15} {psnr(field, recon):>7.1f} "
              f"{ssim(field, recon):>7.4f} "
              f"{spectral_fidelity(field, recon):>9.4f} "
              f"{gradient_fidelity(field, recon):>8.1f} "
              f"{histogram_intersection(field, recon):>6.3f}")

    print("\nReading the table: compressors that tie on PSNR can differ on")
    print("spectral and gradient fidelity — exactly why §4.3.3 argues that")
    print("analysis-grade use cases need the high-quality pipelines even")
    print("when a fast compressor's PSNR looks sufficient.")


if __name__ == "__main__":
    main()
