#!/usr/bin/env python3
"""Post-hoc analysis workflow: snapshot sequences and region reads.

Two capabilities the paper's introduction motivates (post hoc analysis of
extreme-scale output) built on the framework:

1. **temporal compression** — a hurricane simulation writes a snapshot
   every few minutes; consecutive frames are similar, so D-frames
   (residual vs the previous *reconstruction*) cost a fraction of
   independent compression, with no error drift;
2. **tiled region-of-interest reads** — the analyst extracts the storm
   core from one frame without decompressing the rest of the volume.

    python examples/timeseries_roi.py
"""

from __future__ import annotations

import numpy as np

from repro import fzmod_default
from repro.core import TemporalCompressor, TemporalDecompressor, \
    TiledField, compress_tiled
from repro.data import gaussian_random_field, load_field
from repro.metrics import max_abs_error, psnr


def evolving_hurricane(frames: int = 8, seed: int = 11):
    """A HURR-like volume drifting over time."""
    base = load_field("hurr", "P", scale=0.12, seed=seed)
    seq = []
    state = base.astype(np.float64)
    for k in range(frames):
        drift = gaussian_random_field(base.shape, slope=3.0,
                                      seed=seed * 100 + k, modes=20)
        state = state + 3e-4 * np.ptp(base) * drift
        seq.append(state.astype(np.float32))
    return seq


def main() -> None:
    seq = evolving_hurricane()
    eb = 1e-3
    rng_v = float(np.ptp(seq[0]))

    # -- temporal stream ------------------------------------------------
    print("== temporal compression (8 evolving HURR snapshots) ==")
    comp = TemporalCompressor(fzmod_default(), eb)
    for frame in seq:
        comp.add_frame(frame)
    blob, stats = comp.finish()
    indep = sum(fzmod_default().compress(f, eb).stats.output_bytes
                for f in seq)
    print(f"frames {stats.frames}  sequence CR {stats.cr:.1f}  "
          f"(independent frames would be CR "
          f"{stats.input_bytes / indep:.1f})")
    print("per-frame CR:", " ".join(f"{c:.1f}" for c in stats.frame_crs),
          " <- I-frame then D-frames")

    dec = TemporalDecompressor(blob)
    for k, frame in enumerate(seq):
        recon = dec.read_next()
        err = max_abs_error(frame, recon)
        assert err <= eb * rng_v * 1.001, (k, err)
    print(f"all {stats.frames} frames within the bound "
          f"(no temporal error drift)")

    # -- tiled region read ----------------------------------------------
    print("\n== tiled region-of-interest read (last frame) ==")
    field = seq[-1]
    tiled = compress_tiled(field, fzmod_default(), eb, tile=(8, 16, 16))
    tf = TiledField(tiled)
    nz, ny, nx = field.shape
    core = (slice(0, nz), slice(ny // 2 - 8, ny // 2 + 8),
            slice(nx // 2 - 8, nx // 2 + 8))
    roi = tf.read_region(core)
    touched = tf.tiles_touched(core)
    print(f"field {field.shape} stored as {tf.tile_count} tiles; "
          f"storm-core read touched {touched} tiles "
          f"({touched / tf.tile_count:.0%} of the data)")
    print(f"ROI PSNR: {psnr(field[core], roi):.1f} dB")


if __name__ == "__main__":
    main()
