#!/usr/bin/env python3
"""Domain scenario: compressing a climate-model output campaign.

The motivating workload of the paper's introduction: a simulation writes
many fields per snapshot, the I/O subsystem is the bottleneck, and the
best-fit compressor differs per field and per machine.  This example runs
the auto-tuner (§5 future-work item 3, implemented in
``repro.core.autotune``) over several CESM-ATM fields for both paper
platforms and reports the end-to-end snapshot outcome.

    python examples/climate_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import decompress
from repro.core.autotune import autotune
from repro.data import get_dataset
from repro.metrics import overall_speedup, psnr
from repro.perf import H100, V100, RunStats, estimate_throughput


def tune_campaign(platform) -> None:
    spec = get_dataset("cesm")
    fields = ("CLDHGH", "T", "Q", "PS")
    eb = 1e-3
    print(f"\n=== {platform.name} (link {platform.link_bw_gbps:.1f} GB/s, "
          f"objective: end-to-end speedup) ===")
    print(f"{'field':<8} {'winner':<24} {'CR':>8} {'Eq.1 speedup':>13}")
    total_in = total_out = 0
    for field in fields:
        data = spec.load(field=field, scale=0.08)
        pipe, report = autotune(data, eb, objective="speedup",
                                platform=platform, sample_fraction=0.3)
        cf = pipe.compress(data, eb)
        total_in += cf.stats.input_bytes
        total_out += cf.stats.output_bytes
        print(f"{field:<8} {report.winner.name:<24} {cf.stats.cr:>8.1f} "
              f"{report.winner.score:>13.2f}")
    print(f"snapshot: {total_in / 1e6:.1f} MB -> {total_out / 1e6:.2f} MB "
          f"(campaign CR {total_in / total_out:.1f})")


def fixed_pipeline_reference() -> None:
    """What a one-size-fits-all choice costs vs per-field tuning."""
    from repro import fzmod_default
    spec = get_dataset("cesm")
    eb = 1e-3
    pipe = fzmod_default()
    print("\n=== fixed fzmod-default reference ===")
    print(f"{'field':<8} {'CR':>8} {'PSNR dB':>8} {'modelled GB/s':>14}")
    for field in ("CLDHGH", "T", "Q", "PS"):
        data = spec.load(field=field, scale=0.08)
        cf = pipe.compress(data, eb)
        recon = decompress(cf.blob)
        stats = RunStats(input_bytes=spec.field_size_bytes, cr=cf.stats.cr,
                         code_fraction=cf.stats.code_fraction,
                         outlier_fraction=cf.stats.outlier_fraction)
        th = estimate_throughput("fzmod-default", stats, H100)
        print(f"{field:<8} {cf.stats.cr:>8.1f} {psnr(data, recon):>8.1f} "
              f"{th.compress_gbps:>14.1f}")


def main() -> None:
    fixed_pipeline_reference()
    tune_campaign(H100)
    tune_campaign(V100)
    print("\nThe best-fit pipeline is platform- and field-dependent — the"
          "\npaper's core argument for a modular framework.")


if __name__ == "__main__":
    main()
