#!/usr/bin/env python3
"""Building custom pipelines — the framework's core workflow (§3.3).

Shows the three ways to get a pipeline:

1. the shipped presets (FZMod-Default / Speed / Quality);
2. the fluent :class:`PipelineBuilder` over registered modules;
3. registering a *new* module and composing with it — the extensibility
   story of the paper.

    python examples/custom_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import PipelineBuilder, decompress, fzmod_default, fzmod_quality, \
    fzmod_speed, register
from repro.core.modules_std import NoSecondary
from repro.data import load_field
from repro.metrics import psnr


def compare(pipes, field, eb: float) -> None:
    print(f"{'pipeline':<24} {'CR':>8} {'bits/val':>9} {'PSNR dB':>8}")
    for pipe in pipes:
        cf = pipe.compress(field, eb)
        recon = decompress(cf.blob)
        print(f"{pipe.name:<24} {cf.stats.cr:>8.2f} "
              f"{cf.stats.bit_rate:>9.3f} {psnr(field, recon):>8.2f}")


class ByteRotateSecondary(NoSecondary):
    """A (deliberately silly) custom secondary module: rotate every byte.

    Real modules would wrap an actual codec; the point is the interface —
    implement ``encode``/``decode``, set ``name``, register, done.  The
    container header records the name, so decompression finds the module
    automatically in any process that registered it.
    """

    name = "byte-rotate"

    def encode(self, body: bytes) -> bytes:
        return bytes((b + 13) % 256 for b in body)

    def decode(self, body: bytes) -> bytes:
        return bytes((b - 13) % 256 for b in body)


def main() -> None:
    field = load_field("hurr", "TC", scale=0.15)
    eb = 1e-3
    print(f"field: HURR/TC {field.shape}, eb={eb:g} (rel)\n")

    # 1. presets
    print("-- presets " + "-" * 40)
    compare([fzmod_default(), fzmod_speed(), fzmod_quality()], field, eb)

    # 2. builder: mix stages freely — e.g. the quality predictor with the
    #    fast encoder, or Huffman plus a secondary pass
    print("\n-- builder combinations " + "-" * 27)
    interp_fast = (PipelineBuilder("interp+bitshuffle")
                   .with_predictor("interp")
                   .with_encoder("bitshuffle")
                   .build())
    lorenzo_packed = (PipelineBuilder("lorenzo+huffman+zstd")
                      .with_predictor("lorenzo")
                      .with_statistics("histogram")
                      .with_encoder("huffman")
                      .with_secondary("zstd-like")
                      .build())
    compare([interp_fast, lorenzo_packed], field, eb)

    # 3. custom module
    print("\n-- custom registered module " + "-" * 23)
    register(ByteRotateSecondary())
    custom = (PipelineBuilder("lorenzo+huffman+rotate")
              .with_predictor("lorenzo")
              .with_encoder("huffman")
              .with_secondary("byte-rotate")
              .build())
    compare([custom], field, eb)
    print("\ncustom module round-trips via the generic decompress() — the")
    print("container header names it, the registry resolves it.")


if __name__ == "__main__":
    main()
