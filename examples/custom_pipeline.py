#!/usr/bin/env python3
"""Building custom pipelines — the framework's core workflow (§3.3).

Shows the ways to get a pipeline, all of which meet at the same place —
a frozen :class:`PipelineSpec` resolved by ``Pipeline.from_spec``:

1. the shipped presets (FZMod-Default / Speed / Quality);
2. a :class:`PipelineSpec` written directly, or built with the fluent
   :class:`PipelineBuilder`;
3. registering a *new* module (via the ``@registry.module`` decorator)
   and composing with it — the extensibility story of the paper.

    python examples/custom_pipeline.py
"""

from __future__ import annotations

from repro import (DEFAULT_REGISTRY, Pipeline, PipelineBuilder, PipelineSpec,
                   decompress, fzmod_default, fzmod_quality, fzmod_speed,
                   unregister)
from repro.core.modules_std import NoSecondary
from repro.data import load_field
from repro.metrics import psnr
from repro.types import Stage


def compare(pipes, field, eb: float) -> None:
    print(f"{'pipeline':<24} {'CR':>8} {'bits/val':>9} {'PSNR dB':>8}")
    for pipe in pipes:
        cf = pipe.compress(field, eb)
        recon = decompress(cf.blob)
        print(f"{pipe.name:<24} {cf.stats.cr:>8.2f} "
              f"{cf.stats.bit_rate:>9.3f} {psnr(field, recon):>8.2f}")


@DEFAULT_REGISTRY.module
class ByteRotateSecondary(NoSecondary):
    """A (deliberately silly) custom secondary module: rotate every byte.

    Real modules would wrap an actual codec; the point is the interface —
    implement ``encode``/``decode``, set ``name``, decorate with
    ``@registry.module`` (which registers an instance), done.  The
    container header records the name, so decompression finds the module
    automatically in any process that registered it.
    """

    name = "byte-rotate"

    def encode(self, body: bytes) -> bytes:
        return bytes((b + 13) % 256 for b in body)

    def decode(self, body: bytes) -> bytes:
        return bytes((b - 13) % 256 for b in body)


def main() -> None:
    field = load_field("hurr", "TC", scale=0.15)
    eb = 1e-3
    print(f"field: HURR/TC {field.shape}, eb={eb:g} (rel)\n")

    # 1. presets
    print("-- presets " + "-" * 40)
    compare([fzmod_default(), fzmod_speed(), fzmod_quality()], field, eb)

    # 2. specs: mix stages freely — e.g. the quality predictor with the
    #    fast encoder, or Huffman plus a secondary pass.  A spec written
    #    out and the equivalent builder chain produce the same pipeline.
    print("\n-- spec / builder combinations " + "-" * 20)
    interp_fast = Pipeline.from_spec(PipelineSpec(
        predictor="interp", encoder="bitshuffle",
        name="interp+bitshuffle"))
    lorenzo_packed = (PipelineBuilder("lorenzo+huffman+zstd")
                      .with_predictor("lorenzo")
                      .with_statistics("histogram")
                      .with_encoder("huffman")
                      .with_secondary("zstd-like")
                      .build())
    assert lorenzo_packed.spec == PipelineSpec(
        statistics="histogram", secondary="zstd-like",
        name="lorenzo+huffman+zstd")
    compare([interp_fast, lorenzo_packed], field, eb)

    # 3. custom module (registered by the @DEFAULT_REGISTRY.module
    #    decorator on the class definition above)
    print("\n-- custom registered module " + "-" * 23)
    custom = Pipeline.from_spec(PipelineSpec(
        predictor="lorenzo", encoder="huffman", secondary="byte-rotate",
        name="lorenzo+huffman+rotate"))
    compare([custom], field, eb)
    print("\ncustom module round-trips via the generic decompress() — the")
    print("container header names it, the registry resolves it.")

    # leave the process-wide registry the way we found it
    unregister(Stage.SECONDARY, "byte-rotate")


if __name__ == "__main__":
    main()
