#!/usr/bin/env python3
"""The CUDASTF-style asynchronous pipeline (§3.3.1).

Declares FZMod-Default as tasks over logical data, lets the engine infer
the DAG and insert transfers, and prints the simulated heterogeneous
schedule — including the paper's showcase overlap: during decompression,
the GPU prepares the outlier scatter while the CPU decodes Huffman.

    python examples/stf_async_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.stf_pipeline import StfDefaultPipeline
from repro.data import load_field
from repro.metrics import max_abs_error
from repro.perf import H100
from repro.stf import gantt


def main() -> None:
    field = load_field("hurr", "U", scale=0.18)
    rng = float(field.max() - field.min())
    eb = 1e-4

    stf = StfDefaultPipeline(platform=H100, mode="async")

    print("== compression task flow ==")
    compressed = stf.compress(field, eb)
    rep = stf.last_report
    print(gantt(rep))
    for t in rep.tasks:
        print(f"  {t.name:<22} {t.device_name:<5} "
              f"[{t.sim_start * 1e3:7.3f}, {t.sim_end * 1e3:7.3f}] ms")
    print(f"  makespan {rep.makespan * 1e3:.3f} ms, "
          f"serial {rep.serial_time() * 1e3:.3f} ms, "
          f"overlap speedup {rep.overlap_speedup():.2f}x")
    print(f"  CR={compressed.stats.cr:.2f}")

    print("\n== decompression task flow (the §3.3.1 overlap) ==")
    restored = stf.decompress(compressed)
    rep = stf.last_report
    print(gantt(rep))
    for t in rep.tasks:
        print(f"  {t.name:<22} {t.device_name:<5} "
              f"[{t.sim_start * 1e3:7.3f}, {t.sim_end * 1e3:7.3f}] ms")
    byname = {t.name: t for t in rep.tasks}
    hd, uo = byname["huffman-decode"], byname["unpack-outliers"]
    overlapped = hd.sim_start < uo.sim_end and uo.sim_start < hd.sim_end
    print(f"  huffman-decode (cpu) and unpack-outliers (gpu) overlap: "
          f"{overlapped}")

    err = max_abs_error(field, restored)
    print(f"\nmax error {err:.3g} <= bound {eb * rng:.3g}: "
          f"{err <= eb * rng * 1.001}")


if __name__ == "__main__":
    main()
